// Tests for the extension modules: incremental expansion, floor layout,
// small-world / generalized hypercube baselines, spectral analysis,
// serialization, and shortest-path-restricted routing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/evaluate.h"
#include "flow/concurrent_flow.h"
#include "graph/algorithms.h"
#include "graph/io.h"
#include "graph/spectral.h"
#include "topo/expansion.h"
#include "topo/het_random.h"
#include "topo/layout.h"
#include "topo/random_regular.h"
#include "topo/small_world.h"
#include "topo/structured.h"

namespace topo {
namespace {

// ---- Incremental expansion ----------------------------------------------

TEST(Expansion, SplicePreservesExistingDegrees) {
  BuiltTopology t = random_regular_topology(20, 14, 8, 3);
  const NodeId fresh = splice_switch(t, 8, 6, 11);
  EXPECT_EQ(fresh, 20);
  EXPECT_EQ(t.graph.num_nodes(), 21);
  for (NodeId n = 0; n < 20; ++n) EXPECT_EQ(t.graph.degree(n), 8);
  EXPECT_EQ(t.graph.degree(fresh), 8);  // 4 links broken -> 8 new ends
  EXPECT_EQ(t.servers.per_switch.back(), 6);
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(Expansion, OddPortCountLeavesOneFree) {
  BuiltTopology t = random_regular_topology(20, 14, 8, 3);
  splice_switch(t, 7, 6, 11);
  EXPECT_EQ(t.graph.degree(20), 6);  // floor(7/2) = 3 splices -> 6 links
}

TEST(Expansion, GrowManySwitches) {
  BuiltTopology t = random_regular_topology(20, 14, 8, 3);
  expand_topology(t, 10, 8, 6, 77);
  EXPECT_EQ(t.graph.num_nodes(), 30);
  for (NodeId n = 0; n < 20; ++n) EXPECT_EQ(t.graph.degree(n), 8);
  EXPECT_TRUE(is_connected(t.graph));
  // Original switches host 14 - 8 = 6 servers; so do the spliced ones.
  EXPECT_EQ(t.servers.total(), 20 * 6 + 10 * 6);
}

TEST(Expansion, ExpandedThroughputTracksFreshRandom) {
  // Grow 16 -> 24 switches and compare with a from-scratch RRG of the
  // final size: the Jellyfish claim is that they match closely.
  BuiltTopology grown = random_regular_topology(16, 10, 6, 3);
  expand_topology(grown, 8, 6, 4, 5);
  const BuiltTopology fresh = random_regular_topology(24, 10, 6, 3);
  EvalOptions options;
  options.flow.epsilon = 0.06;
  const double grown_lambda = evaluate_throughput(grown, options, 9).lambda;
  const double fresh_lambda = evaluate_throughput(fresh, options, 9).lambda;
  EXPECT_NEAR(grown_lambda, fresh_lambda, 0.2 * fresh_lambda);
}

TEST(Expansion, RejectsDegenerateRequests) {
  BuiltTopology t = random_regular_topology(6, 5, 2, 1);
  EXPECT_THROW(splice_switch(t, 1, 0, 3), InvalidArgument);
  EXPECT_THROW(splice_switch(t, 100, 0, 3), InvalidArgument);
}

// ---- Floor layout / cable lengths ---------------------------------------

TEST(Layout, GridPositions) {
  const FloorLayout layout = grid_layout(6, 3);
  EXPECT_EQ(layout.num_switches(), 6);
  EXPECT_EQ(layout.position[0].row, 0);
  EXPECT_EQ(layout.position[2].column, 2);
  EXPECT_EQ(layout.position[3].row, 1);
  EXPECT_EQ(layout.position[3].column, 0);
}

TEST(Layout, PerRackGrouping) {
  const FloorLayout layout = grid_layout(6, 2, /*per_rack=*/3);
  EXPECT_EQ(cable_length(layout, 0, 2), 0.0);  // same rack
  EXPECT_EQ(cable_length(layout, 0, 3), 1.0);  // adjacent rack
}

TEST(Layout, TwoZoneSeparatesClusters) {
  const FloorLayout layout = two_zone_layout(4, 4, 4);
  // Cluster A in columns 0-1, cluster B in columns 2-3.
  for (int i = 0; i < 4; ++i) EXPECT_LT(layout.position[static_cast<std::size_t>(i)].column, 2);
  for (int i = 4; i < 8; ++i) EXPECT_GE(layout.position[static_cast<std::size_t>(i)].column, 2);
}

TEST(Layout, CableStatsOnKnownGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);  // distance 1 on a 2-column grid
  g.add_edge(0, 3, 1.0);  // distance 2
  const FloorLayout layout = grid_layout(4, 2);
  const CableStats stats = cable_stats(g, layout);
  EXPECT_DOUBLE_EQ(stats.total_length, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_length, 1.5);
  EXPECT_DOUBLE_EQ(stats.max_length, 2.0);
}

TEST(Layout, LocalWiringShortensCables) {
  // Two-cluster graph with little cross wiring has shorter cables on a
  // two-zone floor than vanilla random wiring (the §6.2 application).
  auto mean_cable = [](double fraction) {
    TwoTypeSpec spec;
    spec.num_large = 12;
    spec.num_small = 12;
    spec.large_ports = 10;
    spec.small_ports = 10;
    spec.servers_per_large = 4;
    spec.servers_per_small = 4;
    spec.cross_fraction = fraction;
    const BuiltTopology t = build_two_type(spec, 3);
    const FloorLayout layout = two_zone_layout(12, 12, 6);
    return cable_stats(t.graph, layout).mean_length;
  };
  EXPECT_LT(mean_cable(0.3), mean_cable(1.0));
}

// ---- Baseline topologies -------------------------------------------------

TEST(SmallWorld, LatticePlusShortcutDegrees) {
  const BuiltTopology t = small_world_topology(20, 4, 2, 3, 9);
  for (NodeId n = 0; n < 20; ++n) EXPECT_EQ(t.graph.degree(n), 6);
  EXPECT_TRUE(is_connected(t.graph));
  EXPECT_EQ(t.servers.total(), 60);
}

TEST(SmallWorld, PureLatticeIsRing) {
  const BuiltTopology t = small_world_topology(10, 2, 0, 1, 0);
  EXPECT_EQ(t.graph.num_edges(), 10);
  EXPECT_EQ(diameter(t.graph), 5);
}

TEST(SmallWorld, ShortcutsShrinkDiameter) {
  const BuiltTopology lattice = small_world_topology(64, 4, 0, 1, 3);
  const BuiltTopology sw = small_world_topology(64, 4, 2, 1, 3);
  EXPECT_LT(diameter(sw.graph), diameter(lattice.graph));
}

TEST(SmallWorld, RejectsBadParameters) {
  EXPECT_THROW((void)small_world_topology(10, 3, 0, 1, 0), InvalidArgument);
  // 9 switches x 3 shortcut ports is an odd stub total.
  EXPECT_THROW((void)small_world_topology(9, 2, 3, 1, 0), InvalidArgument);
}

TEST(GeneralizedHypercube, BinaryRadicesAreHypercube) {
  const BuiltTopology ghc = generalized_hypercube_topology({2, 2, 2}, 1);
  const BuiltTopology cube = hypercube_topology(3, 1);
  EXPECT_EQ(ghc.graph.num_nodes(), cube.graph.num_nodes());
  EXPECT_EQ(ghc.graph.num_edges(), cube.graph.num_edges());
  EXPECT_DOUBLE_EQ(average_shortest_path_length(ghc.graph),
                   average_shortest_path_length(cube.graph));
}

TEST(GeneralizedHypercube, MixedRadixDegrees) {
  const BuiltTopology t = generalized_hypercube_topology({3, 4}, 2);
  EXPECT_EQ(t.graph.num_nodes(), 12);
  for (NodeId n = 0; n < 12; ++n) {
    EXPECT_EQ(t.graph.degree(n), (3 - 1) + (4 - 1));
  }
  EXPECT_EQ(diameter(t.graph), 2);  // one hop per differing coordinate
}

TEST(GeneralizedHypercube, SingleDimensionIsClique) {
  const BuiltTopology t = generalized_hypercube_topology({5}, 0);
  EXPECT_EQ(t.graph.num_edges(), 10);
  EXPECT_EQ(diameter(t.graph), 1);
}

// ---- Spectral analysis ----------------------------------------------------

TEST(Spectral, CompleteGraphSpectrum) {
  // K_n adjacency: lambda1 = n-1, all others -1.
  Graph g(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) g.add_edge(i, j, 1.0);
  }
  const SpectralResult s = adjacency_spectrum(g, 3);
  EXPECT_NEAR(s.lambda1, 5.0, 1e-6);
  EXPECT_NEAR(std::fabs(s.lambda2), 1.0, 1e-4);
}

TEST(Spectral, HypercubeSpectrumIsBipartite) {
  // The d-cube's adjacency eigenvalues are d - 2i: second largest = d - 2,
  // smallest = -d (bipartite), so the two-sided gap is zero.
  const BuiltTopology cube = hypercube_topology(4, 0);
  const SpectralResult s = adjacency_spectrum(cube.graph, 5, 2000);
  EXPECT_NEAR(s.lambda1, 4.0, 1e-5);
  EXPECT_NEAR(s.lambda2, 2.0, 1e-2);
  EXPECT_NEAR(s.lambda_min, -4.0, 1e-2);
  EXPECT_NEAR(s.gap, 0.0, 1e-2);
}

TEST(Spectral, RandomRegularNearRamanujan) {
  // |lambda2| close to 2*sqrt(d-1) for random d-regular graphs.
  const Graph g = random_regular_graph(200, 6, 9);
  const SpectralResult s = adjacency_spectrum(g, 7, 1200);
  EXPECT_NEAR(s.lambda1, 6.0, 1e-4);
  EXPECT_LT(std::fabs(s.lambda2), 2.0 * std::sqrt(5.0) * 1.25);
  EXPECT_GT(s.gap, 1.0);  // genuine expander
}

TEST(Spectral, MixingLemmaEstimate) {
  EXPECT_DOUBLE_EQ(expected_edges_between(100, 10, 50, 50), 250.0);
}

// ---- Serialization ---------------------------------------------------------

TEST(GraphIo, EdgeListRoundTrip) {
  const BuiltTopology original = random_regular_topology(12, 8, 5, 17);
  std::stringstream buffer;
  write_edge_list(buffer, original);
  const BuiltTopology parsed = read_edge_list(buffer);
  ASSERT_EQ(parsed.graph.num_nodes(), original.graph.num_nodes());
  ASSERT_EQ(parsed.graph.num_edges(), original.graph.num_edges());
  for (EdgeId e = 0; e < original.graph.num_edges(); ++e) {
    EXPECT_EQ(parsed.graph.edge(e).u, original.graph.edge(e).u);
    EXPECT_EQ(parsed.graph.edge(e).v, original.graph.edge(e).v);
    EXPECT_DOUBLE_EQ(parsed.graph.edge(e).capacity,
                     original.graph.edge(e).capacity);
  }
  EXPECT_EQ(parsed.servers.per_switch, original.servers.per_switch);
}

TEST(GraphIo, ReadRejectsGarbage) {
  std::stringstream buffer("not a number\n");
  EXPECT_THROW((void)read_edge_list(buffer), InvalidArgument);
}

TEST(GraphIo, DotOutputMentionsEveryNode) {
  const BuiltTopology t = random_regular_topology(5, 4, 2, 3);
  std::stringstream buffer;
  write_dot(buffer, t, "g");
  const std::string out = buffer.str();
  for (int n = 0; n < 5; ++n) {
    EXPECT_NE(out.find("n" + std::to_string(n)), std::string::npos);
  }
  EXPECT_NE(out.find("graph g {"), std::string::npos);
}

// ---- Shortest-path-restricted routing -------------------------------------

TEST(RestrictedRouting, CannotUseLongerDetours) {
  // Direct 1-hop path (cap 1) plus a 3-hop detour (cap 1): unrestricted
  // throughput 2, shortest-path-restricted 1.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 1, 1.0);
  FlowOptions unrestricted;
  unrestricted.epsilon = 0.03;
  FlowOptions restricted = unrestricted;
  restricted.restrict_to_shortest_paths = true;
  const double free_lambda =
      max_concurrent_flow(g, {{0, 1, 1.0}}, unrestricted).lambda;
  const double ecmp_lambda =
      max_concurrent_flow(g, {{0, 1, 1.0}}, restricted).lambda;
  EXPECT_NEAR(free_lambda, 2.0, 0.1);
  EXPECT_NEAR(ecmp_lambda, 1.0, 1e-6);
}

TEST(RestrictedRouting, EqualCostPathsStillSplit) {
  // Two parallel 2-hop paths of equal length: ECMP uses both.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  FlowOptions restricted;
  restricted.epsilon = 0.03;
  restricted.restrict_to_shortest_paths = true;
  const double lambda =
      max_concurrent_flow(g, {{0, 3, 1.0}}, restricted).lambda;
  EXPECT_GT(lambda, 1.9);
}

TEST(RestrictedRouting, NeverExceedsUnrestricted) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_regular_graph(16, 4, seed);
    std::vector<Commodity> commodities;
    for (int i = 0; i < 16; ++i) commodities.push_back({i, (i + 7) % 16, 1.0});
    FlowOptions unrestricted;
    unrestricted.epsilon = 0.05;
    FlowOptions restricted = unrestricted;
    restricted.restrict_to_shortest_paths = true;
    const double free_lambda =
        max_concurrent_flow(g, commodities, unrestricted).lambda;
    const double ecmp_lambda =
        max_concurrent_flow(g, commodities, restricted).lambda;
    // ECMP is a restriction: it cannot beat optimal routing by more than
    // the two runs' certified gaps.
    EXPECT_LE(ecmp_lambda, free_lambda / (1.0 - 0.05) + 1e-9);
  }
}

TEST(RestrictedRouting, StrictShortestPathsVisiblyHurtRrgs) {
  // The Jellyfish finding this module lets us reproduce: restricting
  // random-graph routing to STRICTLY shortest paths (pure ECMP) costs a
  // lot of throughput — 1-hop commodities are pinned to their single
  // direct edge. That is exactly why Jellyfish/this paper route MPTCP
  // over k-shortest (including non-minimal) paths instead of ECMP.
  const Graph g = random_regular_graph(24, 6, 3);
  std::vector<Commodity> commodities;
  for (int shift : {5, 9, 13}) {
    for (int i = 0; i < 24; ++i) {
      commodities.push_back({i, (i + shift) % 24, 2.0});
    }
  }
  FlowOptions unrestricted;
  unrestricted.epsilon = 0.05;
  FlowOptions restricted = unrestricted;
  restricted.restrict_to_shortest_paths = true;
  const double free_lambda =
      max_concurrent_flow(g, commodities, unrestricted).lambda;
  const double ecmp_lambda =
      max_concurrent_flow(g, commodities, restricted).lambda;
  EXPECT_GT(ecmp_lambda, 0.0);
  EXPECT_LT(ecmp_lambda, 0.8 * free_lambda);  // the restriction is costly
}

}  // namespace
}  // namespace topo
