// Tests for the util module: RNG determinism, statistics, tables, flags.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/error.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace topo {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform_int(5, 4), InvalidArgument);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW((void)rng.index(0), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto original = v;
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    rng.shuffle(v);
    changed = v != original;
  }
  EXPECT_TRUE(changed);
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), InvalidArgument);
}

TEST(Rng, DeriveSeedSpreadsSalts) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(Rng::derive_seed(99, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, DeriveSeedDependsOnMaster) {
  EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(2, 0));
}

TEST(Stats, SummaryOfKnownValues) {
  const Summary s = summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stdev, 2.0, 1e-12);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, SummaryOfSingleValueHasZeroStdev) {
  const Summary s = summarize({5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stdev, 0.0);
}

TEST(Stats, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, RelativeGapSymmetric) {
  EXPECT_DOUBLE_EQ(relative_gap(1.0, 2.0), relative_gap(2.0, 1.0));
  EXPECT_DOUBLE_EQ(relative_gap(1.0, 1.0), 0.0);
}

TEST(Stats, RelativeGapSafeAtZero) {
  EXPECT_LE(relative_gap(0.0, 0.0), 1e-6);
}

TEST(Table, AlignedOutputContainsValues) {
  TablePrinter t({"name", "x"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.0});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5000"), std::string::npos);
  EXPECT_NE(out.find("22.0000"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({static_cast<long long>(3), 0.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n3,0.5000\n");
}

TEST(Table, RejectsWrongWidth) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), InvalidArgument);
}

TEST(Table, PrecisionConfigurable) {
  TablePrinter t({"x"});
  t.set_precision(1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x\n3.1\n");
}

TEST(Flags, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--runs", "5", "--eps=0.25", "--csv"};
  Flags f(5, argv, {"runs", "eps", "csv"});
  EXPECT_EQ(f.get_int("runs", 0), 5);
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0.0), 0.25);
  EXPECT_TRUE(f.get_bool("csv"));
  EXPECT_FALSE(f.get_bool("full"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv, {"runs"});
  EXPECT_EQ(f.get_int("runs", 7), 7);
  EXPECT_EQ(f.get_string("runs", "dflt"), "dflt");
}

TEST(Flags, Uint64CoversFullSeedRangeAndRejectsGarbage) {
  const char* argv[] = {"prog", "--seed", "5000000000"};
  Flags f(3, argv, {"seed"});
  EXPECT_EQ(f.get_uint64("seed", 1), 5000000000ULL);  // > INT_MAX
  EXPECT_EQ(f.get_uint64("absent", 7), 7ULL);

  const char* negative[] = {"prog", "--seed=-3"};
  EXPECT_THROW((void)Flags(2, negative, {"seed"}).get_uint64("seed", 1),
               InvalidArgument);
  const char* text[] = {"prog", "--seed", "abc"};
  EXPECT_THROW((void)Flags(3, text, {"seed"}).get_uint64("seed", 1),
               InvalidArgument);
  const char* huge[] = {"prog", "--seed", "99999999999999999999999"};
  EXPECT_THROW((void)Flags(3, huge, {"seed"}).get_uint64("seed", 1),
               InvalidArgument);
}

TEST(Flags, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(Flags(2, argv, {"runs"}), InvalidArgument);
}

TEST(Flags, RejectsNonFlagToken) {
  const char* argv[] = {"prog", "runs"};
  EXPECT_THROW(Flags(2, argv, {"runs"}), InvalidArgument);
}

TEST(ErrorHierarchy, TypesAreDistinguishable) {
  try {
    throw ConstructionFailure("boom");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_THROW(require(false, "msg"), InvalidArgument);
  EXPECT_NO_THROW(require(true, "msg"));
}

}  // namespace
}  // namespace topo
