// Tests for the discrete-event queue, links, and path sampling.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/routing.h"
#include "topo/random_regular.h"
#include "util/error.h"

namespace topo::sim {
namespace {

class Recorder : public EventHandler {
 public:
  void on_event(std::uint64_t cookie) override { cookies.push_back(cookie); }
  std::vector<std::uint64_t> cookies;
};

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  Recorder r;
  q.schedule(30, &r, 3);
  q.schedule(10, &r, 1);
  q.schedule(20, &r, 2);
  q.run_until(100);
  EXPECT_EQ(r.cookies, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, FifoAmongSimultaneousEvents) {
  EventQueue q;
  Recorder r;
  for (std::uint64_t i = 0; i < 5; ++i) q.schedule(10, &r, i);
  q.run_until(10);
  EXPECT_EQ(r.cookies, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  Recorder r;
  q.schedule(10, &r, 1);
  q.schedule(20, &r, 2);
  EXPECT_EQ(q.run_until(15), 1u);
  EXPECT_EQ(r.cookies.size(), 1u);
  EXPECT_EQ(q.run_until(25), 1u);
  EXPECT_EQ(r.cookies.size(), 2u);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  Recorder r;
  q.schedule(10, &r, 1);
  q.run_until(50);
  EXPECT_THROW(q.schedule(20, &r, 2), topo::InvalidArgument);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  struct Chainer : EventHandler {
    EventQueue* q = nullptr;
    int count = 0;
    void on_event(std::uint64_t) override {
      if (++count < 5) q->schedule(q->now() + 10, this, 0);
    }
  } chain;
  chain.q = &q;
  q.schedule(0, &chain, 0);
  q.run_until(1000);
  EXPECT_EQ(chain.count, 5);
}

class Collector : public PacketReceiver {
 public:
  void packet_arrived(Packet* packet) override {
    arrival_times.push_back(when->now());
    packets.push_back(packet);
  }
  const EventQueue* when = nullptr;
  std::vector<SimTime> arrival_times;
  std::vector<Packet*> packets;
};

TEST(SimLink, LatencyIsSerializationPlusPropagation) {
  EventQueue q;
  Collector sink;
  sink.when = &q;
  SimLink link(&q, /*rate_gbps=*/1.0, /*delay_ns=*/500, /*queue=*/4, &sink);
  Packet p;
  p.size_bytes = 1500;  // 12000 bits @ 1 Gbps = 12000 ns
  ASSERT_TRUE(link.enqueue(&p));
  q.run_until(1'000'000);
  ASSERT_EQ(sink.arrival_times.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], 12'500u);
}

TEST(SimLink, BackToBackPacketsSerialize) {
  EventQueue q;
  Collector sink;
  sink.when = &q;
  SimLink link(&q, 1.0, 0, 16, &sink);
  std::vector<Packet> packets(3);
  for (auto& p : packets) {
    p.size_bytes = 1500;
    ASSERT_TRUE(link.enqueue(&p));
  }
  q.run_until(1'000'000);
  ASSERT_EQ(sink.arrival_times.size(), 3u);
  EXPECT_EQ(sink.arrival_times[0], 12'000u);
  EXPECT_EQ(sink.arrival_times[1], 24'000u);
  EXPECT_EQ(sink.arrival_times[2], 36'000u);
}

TEST(SimLink, TenXRateIsTenXFaster) {
  EventQueue q;
  Collector sink;
  sink.when = &q;
  SimLink link(&q, 10.0, 0, 4, &sink);
  Packet p;
  p.size_bytes = 1500;
  ASSERT_TRUE(link.enqueue(&p));
  q.run_until(1'000'000);
  ASSERT_EQ(sink.arrival_times.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], 1'200u);
}

TEST(SimLink, DropsWhenQueueFull) {
  EventQueue q;
  Collector sink;
  sink.when = &q;
  SimLink link(&q, 1.0, 0, /*queue=*/2, &sink);
  std::vector<Packet> packets(5);
  int accepted = 0;
  for (auto& p : packets) {
    p.size_bytes = 1500;
    if (link.enqueue(&p)) ++accepted;
  }
  // 1 in service + 2 queued = 3 accepted, 2 dropped.
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(link.drops(), 2u);
  q.run_until(1'000'000);
  EXPECT_EQ(sink.packets.size(), 3u);
}

TEST(Routing, SampledPathsAreShortest) {
  const Graph g = topo::random_regular_graph(20, 4, 3);
  topo::Rng rng(1);
  const auto dist = topo::bfs_distances(g, 7);
  for (NodeId src = 0; src < 20; ++src) {
    if (src == 7) continue;
    const auto path = sample_shortest_arc_path(g, src, 7, dist, rng);
    EXPECT_EQ(static_cast<int>(path.size()),
              dist[static_cast<std::size_t>(src)]);
    // Check arc continuity: each arc's tail is the previous head.
    NodeId at = src;
    for (int arc : path) {
      const Edge& e = g.edge(arc / 2);
      const NodeId tail = arc % 2 == 0 ? e.u : e.v;
      const NodeId head = arc % 2 == 0 ? e.v : e.u;
      EXPECT_EQ(tail, at);
      at = head;
    }
    EXPECT_EQ(at, 7);
  }
}

TEST(Routing, SamplingFindsMultiplePaths) {
  // A 4-cycle has two equal shortest paths between opposite corners.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  topo::Rng rng(5);
  const auto dist = topo::bfs_distances(g, 2);
  std::set<std::vector<int>> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(sample_shortest_arc_path(g, 0, 2, dist, rng));
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Routing, EmptyPathForSameNode) {
  Graph g(2);
  g.add_edge(0, 1);
  topo::Rng rng(0);
  const auto dist = topo::bfs_distances(g, 0);
  EXPECT_TRUE(sample_shortest_arc_path(g, 0, 0, dist, rng).empty());
}

TEST(Routing, ThrowsWhenUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  topo::Rng rng(0);
  const auto dist = topo::bfs_distances(g, 2);
  EXPECT_THROW((void)sample_shortest_arc_path(g, 0, 2, dist, rng),
               topo::InvalidArgument);
}

}  // namespace
}  // namespace topo::sim
