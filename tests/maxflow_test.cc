// Tests for Dinic max-flow, min cuts, and the bisection heuristic.
#include <gtest/gtest.h>

#include "graph/maxflow.h"
#include "util/error.h"

namespace topo {
namespace {

TEST(MaxFlow, SingleEdgeFullDuplex) {
  Graph g(2);
  g.add_edge(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 1).value, 3.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 0).value, 3.0);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 2).value, 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 3).value, 3.0);
}

TEST(MaxFlow, ParallelEdgesAdd) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 1).value, 3.5);
}

TEST(MaxFlow, DisconnectedIsZero) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 2).value, 0.0);
}

TEST(MaxFlow, ClassicDiamondWithCrossEdge) {
  // 0->{1,2}->3 with a 1-2 cross edge; undirected full-duplex capacities.
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 10.0);
  g.add_edge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 3).value, 20.0);
}

TEST(MaxFlow, MinCutSideSeparatesSourceFromSink) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  const MaxFlowResult r = max_flow(g, 0, 2);
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_FALSE(r.source_side[2]);
  // The cut value must equal the flow value.
  EXPECT_DOUBLE_EQ(cut_capacity(g, r.source_side), r.value);
}

TEST(MaxFlow, MultiSourceMultiSink) {
  Graph g(6);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.5);
  g.add_edge(3, 4, 1.0);
  g.add_edge(3, 5, 1.0);
  const MaxFlowResult r = max_flow(g, {0, 1}, {4, 5});
  EXPECT_DOUBLE_EQ(r.value, 1.5);  // bottleneck at the 2-3 edge
}

TEST(MaxFlow, RejectsOverlappingSourceSink) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)max_flow(g, {0}, {0}), InvalidArgument);
}

TEST(MaxFlow, RejectsEmptySets) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(
      (void)max_flow(g, std::vector<NodeId>{}, std::vector<NodeId>{1}),
      InvalidArgument);
}

TEST(CutCapacity, CountsCrossingEdgesOnce) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(1, 3, 7.0);
  const std::vector<char> side{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(cut_capacity(g, side), 12.0);
}

TEST(CutCapacity, RequiresFullCover) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)cut_capacity(g, std::vector<char>{1}), InvalidArgument);
}

TEST(Bisection, TwoCliquesJoinedByOneEdge) {
  // Two K4s joined by a single unit edge: optimal bisection cuts just it.
  Graph g(8);
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) g.add_edge(base + i, base + j, 1.0);
    }
  }
  g.add_edge(0, 4, 1.0);
  EXPECT_DOUBLE_EQ(bisection_bandwidth_estimate(g, 123, 8), 1.0);
}

TEST(Bisection, CompleteGraphValueIsExact) {
  // K4 balanced bisection cuts 2*2 = 4 unit edges.
  Graph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j, 1.0);
  }
  EXPECT_DOUBLE_EQ(bisection_bandwidth_estimate(g, 7, 4), 4.0);
}

}  // namespace
}  // namespace topo
