// Property-based tests of the concurrent-flow solver: scaling laws,
// monotonicity, and symmetry that must hold for any correct max
// concurrent flow implementation (up to the certified gap).
#include <gtest/gtest.h>

#include "flow/concurrent_flow.h"
#include "topo/random_regular.h"
#include "util/rng.h"

namespace topo {
namespace {

std::vector<Commodity> permutation_commodities(int n, int shift) {
  std::vector<Commodity> commodities;
  for (int i = 0; i < n; ++i) commodities.push_back({i, (i + shift) % n, 1.0});
  return commodities;
}

FlowOptions tight() {
  FlowOptions o;
  o.epsilon = 0.05;
  return o;
}

class ScalingLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingLaws, CapacityScalesThroughputLinearly) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_regular_graph(16, 4, seed);
  Graph scaled(16);
  for (const Edge& e : g.edges()) scaled.add_edge(e.u, e.v, e.capacity * 3.0);
  const auto commodities = permutation_commodities(16, 5);
  const double base = max_concurrent_flow(g, commodities, tight()).lambda;
  const double tripled =
      max_concurrent_flow(scaled, commodities, tight()).lambda;
  EXPECT_NEAR(tripled / base, 3.0, 3.0 * 0.12);
}

TEST_P(ScalingLaws, DemandScalesThroughputInversely) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_regular_graph(16, 4, seed);
  auto commodities = permutation_commodities(16, 5);
  const double base = max_concurrent_flow(g, commodities, tight()).lambda;
  for (Commodity& c : commodities) c.demand *= 4.0;
  const double heavy = max_concurrent_flow(g, commodities, tight()).lambda;
  EXPECT_NEAR(heavy * 4.0 / base, 1.0, 0.12);
}

TEST_P(ScalingLaws, AddingAnEdgeNeverHurtsMuch) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_regular_graph(16, 4, seed);
  Graph augmented(16);
  for (const Edge& e : g.edges()) augmented.add_edge(e.u, e.v, e.capacity);
  // Add an extra edge between two non-adjacent nodes.
  for (NodeId u = 0; u < 16; ++u) {
    bool added = false;
    for (NodeId v = u + 2; v < 16; ++v) {
      if (!g.has_edge(u, v)) {
        augmented.add_edge(u, v, 1.0);
        added = true;
        break;
      }
    }
    if (added) break;
  }
  const auto commodities = permutation_commodities(16, 5);
  const double base = max_concurrent_flow(g, commodities, tight()).lambda;
  const double more =
      max_concurrent_flow(augmented, commodities, tight()).lambda;
  // Monotone up to solver noise: both are (1-eps)-certified lower bounds.
  EXPECT_GE(more, base * (1.0 - 2.0 * 0.05));
}

TEST_P(ScalingLaws, RelabelingNodesPreservesThroughput) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_regular_graph(14, 4, seed);
  // Relabel i -> (i + 3) mod 14.
  const auto relabel = [](NodeId v) { return (v + 3) % 14; };
  Graph h(14);
  for (const Edge& e : g.edges()) {
    h.add_edge(relabel(e.u), relabel(e.v), e.capacity);
  }
  auto commodities = permutation_commodities(14, 5);
  const double lambda_g = max_concurrent_flow(g, commodities, tight()).lambda;
  for (Commodity& c : commodities) {
    c.src = relabel(c.src);
    c.dst = relabel(c.dst);
  }
  const double lambda_h = max_concurrent_flow(h, commodities, tight()).lambda;
  EXPECT_NEAR(lambda_g, lambda_h, 0.08 * lambda_g);
}

TEST_P(ScalingLaws, MergingParallelCommoditiesIsEquivalent) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_regular_graph(12, 4, seed);
  // Two unit commodities over the same pair == one of demand two.
  const std::vector<Commodity> split{{0, 6, 1.0}, {0, 6, 1.0}, {3, 9, 1.0}};
  const std::vector<Commodity> merged{{0, 6, 2.0}, {3, 9, 1.0}};
  const double a = max_concurrent_flow(g, split, tight()).lambda;
  const double b = max_concurrent_flow(g, merged, tight()).lambda;
  EXPECT_NEAR(a, b, 0.08 * std::max(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScalingLaws,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

TEST(FlowInvariants, DualAlwaysAtLeastPrimal) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = random_regular_graph(18, 4, seed);
    const auto commodities = permutation_commodities(18, 7);
    const ThroughputResult r = max_concurrent_flow(g, commodities);
    EXPECT_GE(r.dual_bound, r.lambda * (1.0 - 1e-9));
    EXPECT_GE(r.gap, 0.0);
    EXPECT_LE(r.gap, 1.0);
  }
}

TEST(FlowInvariants, ArcFlowConservesAtIntermediateNodes) {
  // With a single commodity, net flow at any non-endpoint node is zero.
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(0, 4, 0.3);
  const ThroughputResult r =
      max_concurrent_flow(g, {{0, 4, 1.0}}, FlowOptions{.epsilon = 0.03});
  for (NodeId n = 1; n <= 3; ++n) {
    double net = 0.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.u == n) {
        net += r.arc_flow[static_cast<std::size_t>(2 * e)];
        net -= r.arc_flow[static_cast<std::size_t>(2 * e + 1)];
      } else if (edge.v == n) {
        net -= r.arc_flow[static_cast<std::size_t>(2 * e)];
        net += r.arc_flow[static_cast<std::size_t>(2 * e + 1)];
      }
    }
    EXPECT_NEAR(net, 0.0, 1e-6);
  }
}

TEST(FlowInvariants, TotalDemandReported) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const ThroughputResult r =
      max_concurrent_flow(g, {{0, 2, 1.5}, {2, 0, 2.5}});
  EXPECT_DOUBLE_EQ(r.total_demand, 4.0);
}

TEST(FlowInvariants, PhasesBoundedByOptions) {
  const Graph g = random_regular_graph(12, 4, 3);
  FlowOptions options;
  options.epsilon = 0.001;  // unreachably tight
  options.max_phases = 25;
  const ThroughputResult r =
      max_concurrent_flow(g, permutation_commodities(12, 5), options);
  EXPECT_LE(r.phases, 25);
  EXPECT_GT(r.lambda, 0.0);  // still returns a feasible answer
}

TEST(FlowInvariants, StagnationCutoffStops) {
  const Graph g = random_regular_graph(12, 4, 3);
  FlowOptions options;
  options.epsilon = 1e-6;  // never reached
  options.stagnation_phases = 10;
  options.max_phases = 100000;
  const ThroughputResult r =
      max_concurrent_flow(g, permutation_commodities(12, 5), options);
  EXPECT_LT(r.phases, 10000);  // stopped by stagnation, not max_phases
}

}  // namespace
}  // namespace topo
