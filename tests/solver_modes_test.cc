// Solver-mode acceptance tests: the exact/approx contract from the
// README "Solver modes" section.
//
// Approx mode must stay within the certified epsilon of exact mode on
// every registered sweep topology, must be byte-deterministic for any
// thread count (checked through the real CLI binary at 1/2/8 threads),
// and must never perturb the cache address of an exact-mode cell —
// flipping the mode, or turning any approx knob in approx mode, changes
// the key, while the same knobs are inert in exact mode so the whole
// historical exact cell population stays warm. Plus the spec-file
// surface: the "solver" key, the "solver_mode" axis, and the
// cdf_file/cdf_table workload keys with their mutual exclusions.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluate.h"
#include "scenario/cache.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "scenario/sweep.h"
#include "scenario/topo_registry.h"
#include "traffic/workload.h"
#include "util/error.h"
#include "util/json.h"
#include "util/subprocess.h"

namespace topo::scenario {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/topobench_solver_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Approx lambda must sit within the certified tolerance of exact lambda
// on every registered sweep's base topology. Both runs certify a
// (1-eps)-approximation of the same optimum, so the two certified values
// can differ by at most eps relative once both gaps are within target.
TEST(SolverModes, ApproxMatchesExactOnRegisteredSweeps) {
  register_builtin_scenarios();
  const double eps = 0.08;
  int compared = 0;
  for (const ScenarioSpec* spec : list_spec_scenarios()) {
    EvalOptions options;
    options.flow.epsilon = eps;
    options.traffic = spec->traffic;
    options.chunky_fraction = spec->chunky_fraction;
    options.hot_fraction = spec->hot_fraction;
    options.hot_multiplier = spec->hot_multiplier;
    options.stride = spec->stride;
    // packet_sim stays off: the tolerance contract is about the fluid
    // solver, and the co-sim is mode-independent.
    const FamilyInfo* family = find_family(spec->topology.family);
    ASSERT_NE(family, nullptr) << spec->name;
    const BuiltTopology topology = family->build(spec->topology.params, 1);

    EvalOptions exact = options;
    exact.flow.mode = SolverMode::kExact;
    EvalOptions approx = options;
    approx.flow.mode = SolverMode::kApprox;
    const ThroughputResult e = evaluate_throughput(topology, exact, 1);
    const ThroughputResult a = evaluate_throughput(topology, approx, 1);
    ASSERT_TRUE(e.feasible) << spec->name;
    ASSERT_TRUE(a.feasible) << spec->name;
    // The relative bound is only meaningful when both runs certified
    // their target gap (a max_phases bailout certifies a looser one).
    if (e.gap <= eps && a.gap <= eps) {
      EXPECT_LE(std::abs(a.lambda - e.lambda) / e.lambda, eps)
          << spec->name << ": exact " << e.lambda << " approx " << a.lambda;
      ++compared;
    }
  }
  // The registry is never empty and the base topologies are easy
  // instances; if nothing got compared the gap guard is miswired.
  EXPECT_GT(compared, 0);
}

// In-process determinism: the approx trajectory is a pure function of
// the inputs, so two evaluations are bit-identical.
TEST(SolverModes, ApproxIsBitDeterministicInProcess) {
  const FamilyInfo* family = find_family("random_regular");
  ASSERT_NE(family, nullptr);
  const BuiltTopology topology =
      family->build({{"n", 20}, {"ports", 8}, {"degree", 5}}, 3);
  EvalOptions options;
  options.flow.mode = SolverMode::kApprox;
  const ThroughputResult a = evaluate_throughput(topology, options, 7);
  const ThroughputResult b = evaluate_throughput(topology, options, 7);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.dual_bound, b.dual_bound);
  EXPECT_EQ(a.phases, b.phases);
}

// The cornerstone of the cache contract: an exact-mode cell's identity
// contains no approx material at all, so (a) every cell written before
// approx mode existed keeps its address and (b) approx knobs are inert
// in exact mode. Approx mode joins the identity explicitly, and every
// approx knob (and the approx version tag) perturbs only approx keys.
TEST(SolverModes, ExactCellKeysUntouchedByApproxKnobs) {
  CellIdentity cell;
  cell.family = "random_regular";
  cell.params = {{"degree", 8}, {"n", 32}, {"ports", 12}};
  cell.topo_seed = 7;
  cell.traffic_seed = 9;

  const std::string exact_json = cell_identity_json(cell);
  EXPECT_EQ(exact_json.find("solver_mode"), std::string::npos) << exact_json;
  EXPECT_EQ(exact_json.find("approx"), std::string::npos) << exact_json;
  const std::uint64_t exact_key = cell_key(cell);

  // Approx knobs without approx mode: same identity, same address.
  CellIdentity inert = cell;
  inert.options.flow.approx_stale_factor = 1.05;
  inert.options.flow.approx_round_size = 8;
  EXPECT_EQ(cell_identity_json(inert), exact_json);
  EXPECT_EQ(cell_key(inert), exact_key);

  // Flipping the mode changes the address and injects the approx tag.
  CellIdentity approx = cell;
  approx.options.flow.mode = SolverMode::kApprox;
  const std::uint64_t approx_key = cell_key(approx);
  EXPECT_NE(approx_key, exact_key);
  EXPECT_NE(cell_identity_json(approx).find(kSolverApproxVersionTag),
            std::string::npos);

  // Each approx knob perturbs approx keys (they are identity in that
  // mode: they change the certified numbers).
  CellIdentity stale = approx;
  stale.options.flow.approx_stale_factor = 1.05;
  EXPECT_NE(cell_key(stale), approx_key);
  CellIdentity round = approx;
  round.options.flow.approx_round_size = 8;
  EXPECT_NE(cell_key(round), approx_key);
}

// User-supplied CDF tables join the cell identity as the parsed points,
// never as a path: identical tables share cells, different tables do
// not, and registry-named cells carry no table material.
TEST(SolverModes, CustomCdfIdentityIsTheParsedTable) {
  CellIdentity cell;
  cell.family = "random_regular";
  cell.params = {{"degree", 5}, {"n", 16}, {"ports", 9}};
  cell.options.packet_sim.enabled = true;
  cell.options.packet_sim.fct.enabled = true;
  cell.options.packet_sim.fct.cdf = "custom";
  cell.options.packet_sim.fct.custom_cdf = {{100.0, 0.0}, {1e6, 1.0}};

  const std::string json = cell_identity_json(cell);
  EXPECT_NE(json.find("cdf_table"), std::string::npos) << json;

  CellIdentity same = cell;
  EXPECT_EQ(cell_key(same), cell_key(cell));

  CellIdentity different = cell;
  different.options.packet_sim.fct.custom_cdf.back().bytes = 2e6;
  EXPECT_NE(cell_key(different), cell_key(cell));

  CellIdentity named = cell;
  named.options.packet_sim.fct.custom_cdf.clear();
  named.options.packet_sim.fct.cdf = "websearch";
  EXPECT_EQ(cell_identity_json(named).find("cdf_table"), std::string::npos);
}

// The spec surface: "solver" serializes only when approx (legacy specs
// stay byte-identical), round-trips, and rejects unknown names; a
// "solver_mode" axis takes only 0/1.
TEST(SolverModes, SpecSolverKeyRoundTripsAndValidates) {
  register_builtin_scenarios();
  const ScenarioSpec* base = find_spec_scenario("sweep_rrg_link_failures");
  ASSERT_NE(base, nullptr);

  const std::string exact_json = spec_to_json(*base);
  EXPECT_EQ(exact_json.find("\"solver\""), std::string::npos);

  ScenarioSpec approx = *base;
  approx.solver = SolverMode::kApprox;
  const std::string approx_json = spec_to_json(approx);
  EXPECT_NE(approx_json.find("\"solver\": \"approx\""), std::string::npos);
  const ScenarioSpec parsed = spec_from_json(approx_json);
  EXPECT_EQ(parsed.solver, SolverMode::kApprox);
  EXPECT_EQ(spec_to_json(parsed), approx_json);

  std::string bad = approx_json;
  const std::size_t at = bad.find("\"approx\"");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 8, "\"fast\"");
  EXPECT_THROW((void)spec_from_json(bad), InvalidArgument);

  ScenarioSpec swept = *base;
  swept.axes.push_back({"solver_mode", {0, 1}, {}});
  EXPECT_NO_THROW(validate_spec(swept));
  swept.axes.back().values = {0, 2};
  EXPECT_THROW(validate_spec(swept), InvalidArgument);
}

// The workload-table spec surface: cdf_table round-trips byte-stably as
// the canonical form, cdf_file loads (and strictly validates) a table
// file, and the three cdf keys are mutually exclusive.
TEST(SolverModes, WorkloadCdfTableAndFileSpecKeys) {
  register_builtin_scenarios();
  const ScenarioSpec* base = find_spec_scenario("sweep_fct_load");
  ASSERT_NE(base, nullptr);

  ScenarioSpec custom = *base;
  custom.packet_sim.fct.cdf = "custom";
  custom.packet_sim.fct.custom_cdf = {{100.0, 0.0}, {1000.0, 0.5},
                                      {100000.0, 1.0}};
  const std::string json = spec_to_json(custom);
  EXPECT_NE(json.find("\"cdf_table\""), std::string::npos);
  // The canonical form drops the registry name entirely.
  EXPECT_EQ(json.find("\"cdf\":"), std::string::npos) << json;
  const ScenarioSpec parsed = spec_from_json(json);
  ASSERT_EQ(parsed.packet_sim.fct.custom_cdf.size(), 3u);
  EXPECT_EQ(parsed.packet_sim.fct.custom_cdf[1].bytes, 1000.0);
  EXPECT_EQ(spec_to_json(parsed), json);

  // cdf_file: the file is parsed at spec-load time into the same table
  // form (the path never survives into the spec).
  const std::string dir = fresh_dir("cdf_file");
  const std::string cdf_path = write_file(
      dir + "/sizes.cdf", "# bytes cum_prob\n100 0\n1000 0.5\n100000 1\n");
  std::string file_json = json;
  const std::string table_text = "\"cdf_table\": [[100, 0], [1000, 0.5], "
                                 "[100000, 1]]";
  const std::size_t table_at = file_json.find(table_text);
  ASSERT_NE(table_at, std::string::npos) << file_json;
  file_json.replace(table_at, table_text.size(),
                    "\"cdf_file\": " + json_string(cdf_path));
  const ScenarioSpec from_file = spec_from_json(file_json);
  ASSERT_EQ(from_file.packet_sim.fct.custom_cdf.size(), 3u);
  EXPECT_EQ(from_file.packet_sim.fct.cdf, "custom");
  // Loading a file and inlining the table are the same spec — they
  // canonicalize to the identical document, so they share cache cells.
  EXPECT_EQ(spec_to_json(from_file), json);

  // A malformed table file fails loudly, naming the path.
  const std::string bad_path =
      write_file(dir + "/bad.cdf", "100 0\n50 0.5\n100000 1\n");
  EXPECT_THROW((void)load_flow_size_cdf_file(bad_path), InvalidArgument);

  // The three cdf keys are mutually exclusive.
  std::string conflict = json;
  conflict.replace(conflict.find("\"cdf_table\""), 11,
                   "\"cdf\": \"websearch\", \"cdf_table\"");
  EXPECT_THROW((void)spec_from_json(conflict), InvalidArgument);
  std::string file_conflict = json;
  file_conflict.replace(
      file_conflict.find("\"cdf_table\""), 11,
      "\"cdf_file\": " + json_string(cdf_path) + ", \"cdf_table\"");
  EXPECT_THROW((void)spec_from_json(file_conflict), InvalidArgument);
}

// End-to-end determinism through the real CLI: an approx sweep's output
// is byte-identical at 1, 2, and 8 threads, and the --solver override
// on an exact spec reproduces the approx-spec output exactly.
TEST(SolverModes, CliApproxOutputIdenticalAcrossThreadCounts) {
  const std::string dir = fresh_dir("cli");
  ScenarioSpec spec;
  spec.name = "solver_modes_test_tiny";
  spec.description = "tiny RRG sweep (solver-mode tests)";
  spec.topology = {"random_regular", {{"n", 12}, {"ports", 6}, {"degree", 4}}};
  spec.axes = {{"link_failure_fraction", {0.0, 0.2}, {}}};
  spec.quick_runs = 1;
  spec.solver = SolverMode::kApprox;
  const std::string approx_path =
      write_file(dir + "/approx_spec.json", spec_to_json(spec));
  spec.solver = SolverMode::kExact;
  const std::string exact_path =
      write_file(dir + "/exact_spec.json", spec_to_json(spec));

  auto run = [&](const std::string& spec_path, int threads,
                 const std::vector<std::string>& extra,
                 const std::string& log_name) {
    std::vector<std::string> argv = {TOPOBENCH_CLI_PATH, "--spec", spec_path,
                                     "--csv", "--eps=0.25", "--seed=5"};
    argv.insert(argv.end(), extra.begin(), extra.end());
    SpawnOptions options;
    options.env = {{"TOPOBENCH_THREADS", std::to_string(threads)}};
    options.log_path = dir + "/" + log_name;
    Subprocess child = Subprocess::spawn(argv, options);
    EXPECT_TRUE(child.wait().ok()) << log_name;
    return read_file(options.log_path);
  };

  const std::string t1 = run(approx_path, 1, {}, "approx_t1.log");
  const std::string t2 = run(approx_path, 2, {}, "approx_t2.log");
  const std::string t8 = run(approx_path, 8, {}, "approx_t8.log");
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);

  // --solver approx on the exact spec is the same computation.
  const std::string overridden =
      run(exact_path, 2, {"--solver", "approx"}, "override_t2.log");
  EXPECT_EQ(t1, overridden);

  // And exact mode is a genuinely different trajectory (sanity that the
  // spec's solver key actually reached the solver).
  const std::string exact = run(exact_path, 1, {}, "exact_t1.log");
  EXPECT_NE(t1, exact);
}

}  // namespace
}  // namespace topo::scenario
