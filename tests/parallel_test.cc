// Tests for the shared thread pool and parallel_for helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/evaluate.h"
#include "topo/random_regular.h"
#include "util/parallel.h"

namespace topo {
namespace {

TEST(Parallel, SlotsIsAtLeastOne) { EXPECT_GE(parallel_slots(), 1); }

TEST(Parallel, SetSlotsAfterResolutionOnlyAcceptsTheResolvedSize) {
  // Force resolution (any earlier test's loop already did, but this test
  // must not depend on ordering).
  std::atomic<int> sink{0};
  parallel_for(4, [&](int) { sink.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_TRUE(parallel_slots_resolved());
  const int slots = parallel_slots();
  // Once the pool is sized, a matching request "succeeds" (it already
  // holds) and any other request reports failure instead of being
  // silently ignored — the contract the --threads flag builds on.
  EXPECT_TRUE(set_parallel_slots(slots));
  EXPECT_FALSE(set_parallel_slots(slots + 1));
  EXPECT_FALSE(set_parallel_slots(0));
  EXPECT_EQ(parallel_slots(), slots);  // failed requests changed nothing
}

TEST(Parallel, RunsEveryItemExactlyOnce) {
  constexpr int kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  parallel_for(kItems, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(Parallel, EmptyAndSingleItemLoops) {
  int count = 0;
  parallel_for(0, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(1, [&](int i) { count += i + 1; });
  EXPECT_EQ(count, 1);
}

TEST(Parallel, SlotIdsStayInRange) {
  constexpr int kItems = 300;
  std::vector<int> slot_of(kItems, -1);
  parallel_for_slots(kItems, [&](int slot, int item) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, parallel_slots());
    slot_of[static_cast<std::size_t>(item)] = slot;
  });
  for (int s : slot_of) EXPECT_GE(s, 0);
}

TEST(Parallel, SlotScratchIsRaceFree) {
  // Per-slot accumulators reduced serially must total the serial sum; a
  // slot shared by two concurrent tasks would corrupt the unsynchronized
  // counters.
  constexpr int kItems = 5000;
  std::vector<long long> per_slot(static_cast<std::size_t>(parallel_slots()), 0);
  parallel_for_slots(kItems, [&](int slot, int item) {
    per_slot[static_cast<std::size_t>(slot)] += item;
  });
  const long long total =
      std::accumulate(per_slot.begin(), per_slot.end(), 0LL);
  EXPECT_EQ(total, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(Parallel, NestedLoopsRunInline) {
  constexpr int kOuter = 8;
  constexpr int kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(kOuter, [&](int outer) {
    parallel_for_slots(kInner, [&](int slot, int inner) {
      EXPECT_EQ(slot, 0);  // nested regions run serially on the caller
      hits[static_cast<std::size_t>(outer * kInner + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](int i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after a throwing loop.
  std::atomic<int> count{0};
  parallel_for(50, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(Parallel, EvaluateTrialsMatchesSerialEvaluation) {
  const BuiltTopology topology = random_regular_topology(12, 8, 5, 5);
  EvalOptions options;
  options.flow.epsilon = 0.1;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const auto batch = evaluate_throughput_trials(topology, options, seeds);
  ASSERT_EQ(batch.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const ThroughputResult serial =
        evaluate_throughput(topology, options, seeds[i]);
    EXPECT_DOUBLE_EQ(batch[i].lambda, serial.lambda) << "seed " << seeds[i];
    EXPECT_DOUBLE_EQ(batch[i].dual_bound, serial.dual_bound);
  }
}

TEST(Parallel, ManySequentialLoops) {
  // Exercises batch publish/retire cycling for stale-batch races.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    parallel_for(10, [&](int) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 10) << "round " << round;
  }
}

}  // namespace
}  // namespace topo
