// Tests for the FPTAS concurrent-flow solver, including cross-validation
// against the exact LP and the paper's throughput-decomposition identity.
#include <gtest/gtest.h>

#include "bounds/bounds.h"
#include "flow/concurrent_flow.h"
#include "lp/mcf_lp.h"
#include "topo/random_regular.h"
#include "traffic/traffic.h"
#include "util/rng.h"

namespace topo {
namespace {

FlowOptions tight() {
  FlowOptions o;
  o.epsilon = 0.05;
  return o;
}

TEST(ConcurrentFlow, SinglePathExact) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const ThroughputResult r = max_concurrent_flow(g, {{0, 2, 1.0}}, tight());
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.lambda, 1.0, 1e-9);  // primal reaches exactly capacity
  EXPECT_GE(r.dual_bound, r.lambda - 1e-9);
}

TEST(ConcurrentFlow, CertifiedGapHolds) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  const ThroughputResult r = max_concurrent_flow(
      g, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}}, tight());
  EXPECT_LE(r.gap, 0.05 + 1e-9);
  EXPECT_GE(r.lambda, (1.0 - 0.05) * 1.5 - 1e-6);  // known OPT = 1.5
  EXPECT_LE(r.lambda, 1.5 + 1e-6);
}

TEST(ConcurrentFlow, DisconnectedReportsInfeasible) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ThroughputResult r = max_concurrent_flow(g, {{0, 2, 1.0}});
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);
}

TEST(ConcurrentFlow, EmptyGraphInfeasible) {
  Graph g(3);
  const ThroughputResult r = max_concurrent_flow(g, {{0, 2, 1.0}});
  EXPECT_FALSE(r.feasible);
}

TEST(ConcurrentFlow, RejectsMalformedCommodities) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)max_concurrent_flow(g, {}), InvalidArgument);
  EXPECT_THROW((void)max_concurrent_flow(g, {{0, 0, 1.0}}), InvalidArgument);
  EXPECT_THROW((void)max_concurrent_flow(g, {{0, 1, 0.0}}), InvalidArgument);
}

TEST(ConcurrentFlow, FlowsRespectCapacities) {
  const Graph g = random_regular_graph(16, 4, 3);
  std::vector<Commodity> commodities;
  for (int i = 0; i < 16; ++i) commodities.push_back({i, (i + 5) % 16, 2.0});
  const ThroughputResult r = max_concurrent_flow(g, commodities, tight());
  for (int arc = 0; arc < 2 * g.num_edges(); ++arc) {
    EXPECT_LE(r.arc_flow[static_cast<std::size_t>(arc)],
              g.edge(arc / 2).capacity + 1e-7);
  }
}

TEST(ConcurrentFlow, DecompositionIdentityHolds) {
  // The paper's T = C*U / (<D> * AS * f) identity, with f the total demand
  // and <D>*AS the mean routed path length, holds exactly by construction.
  const Graph g = random_regular_graph(20, 4, 9);
  std::vector<Commodity> commodities;
  for (int i = 0; i < 20; ++i) commodities.push_back({i, (i + 7) % 20, 1.0});
  const ThroughputResult r = max_concurrent_flow(g, commodities, tight());
  ASSERT_TRUE(r.feasible);
  const double c_total = g.total_directed_capacity();
  const double reconstructed =
      c_total * r.utilization /
      (r.demand_weighted_spl * r.stretch * r.total_demand);
  EXPECT_NEAR(reconstructed, r.lambda, 1e-6 * r.lambda);
}

TEST(ConcurrentFlow, UtilizationWithinUnitRange) {
  const Graph g = random_regular_graph(14, 3, 2);
  std::vector<Commodity> commodities;
  for (int i = 0; i < 14; ++i) commodities.push_back({i, (i + 3) % 14, 1.0});
  const ThroughputResult r = max_concurrent_flow(g, commodities);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

TEST(ConcurrentFlow, StretchAtLeastOne) {
  const Graph g = random_regular_graph(14, 3, 2);
  std::vector<Commodity> commodities;
  for (int i = 0; i < 14; ++i) commodities.push_back({i, (i + 3) % 14, 1.0});
  const ThroughputResult r = max_concurrent_flow(g, commodities);
  EXPECT_GE(r.stretch, 1.0 - 1e-6);
}

TEST(ConcurrentFlow, HighCapacityEdgePreferred) {
  // Two parallel 2-hop routes, one 10x faster: throughput ~ 11 total.
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 3, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const ThroughputResult r = max_concurrent_flow(g, {{0, 3, 1.0}}, tight());
  EXPECT_GE(r.lambda, 0.95 * 11.0);
  EXPECT_LE(r.lambda, 11.0 + 1e-6);
}

// Cross-validation against the exact LP over random instances.
class FptasVsLp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FptasVsLp, WithinCertifiedGap) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_regular_graph(10, 3, seed);
  Rng rng(seed + 1000);
  std::vector<Commodity> commodities;
  for (int i = 0; i < 6; ++i) {
    const int src = rng.uniform_int(0, 9);
    int dst = rng.uniform_int(0, 9);
    if (dst == src) dst = (dst + 1) % 10;
    commodities.push_back({src, dst, 1.0 + rng.uniform()});
  }
  const McfLpResult exact = solve_concurrent_flow_lp(g, commodities);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  const ThroughputResult approx =
      max_concurrent_flow(g, commodities, tight());
  // The FPTAS is a lower bound within its certified gap of the optimum,
  // and its dual bound must be above the optimum.
  EXPECT_LE(approx.lambda, exact.lambda * (1.0 + 1e-6));
  EXPECT_GE(approx.lambda, exact.lambda * (1.0 - 0.05) - 1e-9);
  EXPECT_GE(approx.dual_bound, exact.lambda * (1.0 - 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FptasVsLp,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL,
                                           6ULL, 7ULL, 8ULL));

// Property: the Theorem-1 path-length bound holds for the measured
// throughput on arbitrary random instances.
class Theorem1Property
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(Theorem1Property, MeasuredThroughputBelowBound) {
  const auto [n, r, seed] = GetParam();
  if ((n * r) % 2 != 0) GTEST_SKIP();
  const Graph g = random_regular_graph(n, r, seed);
  std::vector<Commodity> commodities;
  for (int i = 0; i < n; ++i) commodities.push_back({i, (i + n / 2) % n, 1.0});
  const ThroughputResult measured = max_concurrent_flow(g, commodities);
  const double bound = throughput_upper_bound(g, commodities);
  EXPECT_LE(measured.lambda, bound * (1.0 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Property,
    ::testing::Combine(::testing::Values(12, 24, 40),
                       ::testing::Values(3, 5, 8),
                       ::testing::Values(11ULL, 12ULL)));

}  // namespace
}  // namespace topo
