// Tests for the analytical bounds: d*, Theorem 1, Eqn 1, thresholds.
#include <gtest/gtest.h>

#include "bounds/bounds.h"
#include "graph/algorithms.h"
#include "topo/random_regular.h"
#include "util/error.h"

namespace topo {
namespace {

// The Petersen graph: the (3,2) Moore graph. Its ASPL attains d* exactly.
Graph petersen() {
  Graph g(10);
  // Outer 5-cycle, inner pentagram, spokes.
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5, 1.0);
  for (int i = 0; i < 5; ++i) g.add_edge(5 + i, 5 + (i + 2) % 5, 1.0);
  for (int i = 0; i < 5; ++i) g.add_edge(i, 5 + i, 1.0);
  return g;
}

TEST(AsplBound, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(aspl_lower_bound(5, 4), 1.0);
  EXPECT_DOUBLE_EQ(aspl_lower_bound(100, 99), 1.0);
}

TEST(AsplBound, PetersenAttainsBound) {
  // 3 neighbors at distance 1, remaining 6 nodes at distance 2:
  // d* = (3 + 12) / 9 = 5/3 — and the Petersen graph achieves it.
  EXPECT_DOUBLE_EQ(aspl_lower_bound(10, 3), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(average_shortest_path_length(petersen()), 5.0 / 3.0);
}

TEST(AsplBound, PartialLevelHandled) {
  // n=8, r=3: 3 at distance 1, remaining 4 at distance 2 (level not full):
  // d* = (3*1 + 4*2)/7 = 11/7.
  EXPECT_DOUBLE_EQ(aspl_lower_bound(8, 3), 11.0 / 7.0);
}

TEST(AsplBound, DegreeTwoIsRing) {
  // r=2 tree view: 2 nodes per level -> ASPL of a ring lower bound.
  // n=7: levels 1,2,3 hold 2 each -> d* = (2*1+2*2+2*3)/6 = 2.
  EXPECT_DOUBLE_EQ(aspl_lower_bound(7, 2), 2.0);
  // A 7-ring's true ASPL is 2: bound is tight here.
}

TEST(AsplBound, MatchingDegreeOne) {
  EXPECT_DOUBLE_EQ(aspl_lower_bound(2, 1), 1.0);
}

TEST(AsplBound, MonotoneInDegree) {
  for (int r = 3; r < 20; ++r) {
    EXPECT_GE(aspl_lower_bound(100, r), aspl_lower_bound(100, r + 1) - 1e-12);
  }
}

TEST(AsplBound, GrowsWithSize) {
  EXPECT_LT(aspl_lower_bound(20, 4), aspl_lower_bound(200, 4));
  EXPECT_LT(aspl_lower_bound(200, 4), aspl_lower_bound(2000, 4));
}

TEST(AsplBound, AlwaysBelowRealAspl) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_regular_graph(30, 4, seed);
    EXPECT_GE(average_shortest_path_length(g),
              aspl_lower_bound(30, 4) - 1e-9);
  }
}

TEST(AsplBound, RejectsBadArguments) {
  EXPECT_THROW((void)aspl_lower_bound(1, 1), InvalidArgument);
  EXPECT_THROW((void)aspl_lower_bound(5, 0), InvalidArgument);
}

TEST(MooreNodes, CountsLevels) {
  // r=3: 1 + 3 = 4 within 1 hop; + 3*2 = 10 within 2 (Petersen!).
  EXPECT_EQ(moore_nodes_within(3, 0), 1);
  EXPECT_EQ(moore_nodes_within(3, 1), 4);
  EXPECT_EQ(moore_nodes_within(3, 2), 10);
  EXPECT_EQ(moore_nodes_within(3, 3), 22);
}

TEST(MooreNodes, DegreeFourSteps) {
  // Fig 3's x-tics for d=4: 1+4=5, +12=17, +36=53, +108=161, ...
  EXPECT_EQ(moore_nodes_within(4, 1), 5);
  EXPECT_EQ(moore_nodes_within(4, 2), 17);
  EXPECT_EQ(moore_nodes_within(4, 3), 53);
  EXPECT_EQ(moore_nodes_within(4, 4), 161);
  EXPECT_EQ(moore_nodes_within(4, 5), 485);
  EXPECT_EQ(moore_nodes_within(4, 6), 1457);
}

TEST(HomogeneousBound, MatchesFormula) {
  // N=10, r=3, f=10 flows: bound = 30 / (10 * 5/3) = 1.8.
  EXPECT_NEAR(homogeneous_throughput_upper_bound(10, 3, 10.0), 1.8, 1e-12);
}

TEST(HomogeneousBound, DecreasesWithFlows) {
  EXPECT_GT(homogeneous_throughput_upper_bound(40, 10, 100.0),
            homogeneous_throughput_upper_bound(40, 10, 200.0));
}

TEST(ThroughputUpperBound, ExactOnAPath) {
  // Path 0-1-2; one commodity 0->2 distance 2; C = 2 edges * 2 dirs = 4.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(throughput_upper_bound(g, {{0, 2, 1.0}}), 2.0);
}

TEST(ThroughputUpperBound, ScalesWithDemand) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(throughput_upper_bound(g, {{0, 2, 2.0}}), 1.0);
}

TEST(TwoClusterBound, PathAndCutComponents) {
  // Two triangles joined by one unit edge, 3 servers per cluster.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 3, 1.0);
  g.add_edge(0, 3, 1.0);
  const std::vector<char> in_a{1, 1, 1, 0, 0, 0};
  const TwoClusterBound b = two_cluster_throughput_bound(g, in_a, 3.0, 3.0);
  // C-bar = 2 (one edge, both directions); cut bound = 2*(6)/(2*9) = 2/3.
  EXPECT_NEAR(b.cut_bound, 2.0 / 3.0, 1e-12);
  EXPECT_GT(b.path_bound, 0.0);
  EXPECT_DOUBLE_EQ(b.combined, std::min(b.path_bound, b.cut_bound));
}

TEST(TwoClusterBound, RequiresServers) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(
      (void)two_cluster_throughput_bound(g, {1, 0}, 0.0, 1.0),
      InvalidArgument);
}

TEST(Threshold, Formula) {
  // C-bar* = T* 2 n1 n2/(n1+n2).
  EXPECT_DOUBLE_EQ(cross_capacity_threshold(0.5, 100.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(cross_capacity_threshold(1.0, 300.0, 100.0), 150.0);
}

TEST(Threshold, RejectsBadArguments) {
  EXPECT_THROW((void)cross_capacity_threshold(-1.0, 1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)cross_capacity_threshold(1.0, 0.0, 1.0),
               InvalidArgument);
}

// Property: under UNIFORM (all-pairs) traffic the universal homogeneous
// bound dominates the graph-specific path-length bound, because the mean
// pair distance equals the ASPL which is at least d*. (For non-uniform
// pair sets the mean distance can be below the ASPL and no dominance
// holds — so this property is exactly the paper's uniform-traffic claim.)
class BoundDominance
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BoundDominance, UniversalAtLeastGraphSpecificForUniformTraffic) {
  const auto [n, r, seed] = GetParam();
  if ((n * r) % 2 != 0) GTEST_SKIP();
  const Graph g = random_regular_graph(n, r, seed);
  std::vector<Commodity> commodities;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) commodities.push_back({i, j, 1.0});
    }
  }
  const double num_flows = static_cast<double>(commodities.size());
  EXPECT_GE(homogeneous_throughput_upper_bound(n, r, num_flows),
            throughput_upper_bound(g, commodities) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundDominance,
    ::testing::Combine(::testing::Values(16, 40), ::testing::Values(3, 7),
                       ::testing::Values(21ULL, 22ULL)));

}  // namespace
}  // namespace topo
