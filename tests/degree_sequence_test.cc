// Tests for the configuration-model builder with swap repair.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "graph/algorithms.h"
#include "topo/degree_sequence.h"
#include "util/error.h"

namespace topo {
namespace {

std::vector<int> realized_degrees(const Graph& g) {
  std::vector<int> d(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const Edge& e : g.edges()) {
    ++d[static_cast<std::size_t>(e.u)];
    ++d[static_cast<std::size_t>(e.v)];
  }
  return d;
}

bool is_simple(const Graph& g) {
  std::map<std::pair<int, int>, int> seen;
  for (const Edge& e : g.edges()) {
    const auto key = std::minmax(e.u, e.v);
    if (++seen[{key.first, key.second}] > 1) return false;
  }
  return true;
}

TEST(DegreeSequence, RealizesExactDegrees) {
  const std::vector<int> degrees{3, 3, 2, 2, 2, 2};
  const Graph g = random_graph_with_degrees(degrees, 1);
  EXPECT_EQ(realized_degrees(g), degrees);
}

TEST(DegreeSequence, SimpleByDefault) {
  const std::vector<int> degrees{4, 4, 4, 4, 4, 4, 4, 4};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = random_graph_with_degrees(degrees, seed);
    EXPECT_TRUE(is_simple(g)) << "seed " << seed;
  }
}

TEST(DegreeSequence, ConnectedByDefault) {
  const std::vector<int> degrees{3, 3, 3, 3, 3, 3, 3, 3, 3, 3};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_TRUE(is_connected(random_graph_with_degrees(degrees, seed)));
  }
}

TEST(DegreeSequence, RejectsOddSum) {
  EXPECT_THROW((void)random_graph_with_degrees({3, 2}, 0), InvalidArgument);
}

TEST(DegreeSequence, RejectsNegativeDegree) {
  EXPECT_THROW((void)random_graph_with_degrees({-1, 1}, 0), InvalidArgument);
}

TEST(DegreeSequence, EmptySequenceYieldsEmptyGraph) {
  const Graph g = random_graph_with_degrees({0, 0, 0}, 0,
                                            {.ensure_connected = false});
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DegreeSequence, DeterministicForSeed) {
  const std::vector<int> degrees{3, 3, 3, 3, 2, 2};
  const Graph a = random_graph_with_degrees(degrees, 99);
  const Graph b = random_graph_with_degrees(degrees, 99);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(DegreeSequence, DifferentSeedsGiveDifferentGraphs) {
  const std::vector<int> degrees(20, 3);
  const Graph a = random_graph_with_degrees(degrees, 1);
  const Graph b = random_graph_with_degrees(degrees, 2);
  bool any_difference = a.num_edges() != b.num_edges();
  for (EdgeId e = 0; !any_difference && e < a.num_edges(); ++e) {
    any_difference =
        a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DegreeSequence, MultigraphFallbackWhenSimpleImpossible) {
  // Two nodes of degree 4 can only be realized with parallel edges.
  const Graph g = random_graph_with_degrees(
      {4, 4}, 3, {.simple = true, .ensure_connected = true});
  EXPECT_EQ(realized_degrees(g), (std::vector<int>{4, 4}));
  EXPECT_EQ(g.edge_multiplicity(0, 1), 4);
}

TEST(DegreeSequence, StrictSimpleFailsWhenImpossible) {
  DegreeSequenceOptions options;
  options.strict_simple = true;
  EXPECT_THROW((void)random_graph_with_degrees({4, 4}, 3, options), Error);
}

TEST(DegreeSequence, NoSelfLoopsEvenInMultigraphMode) {
  DegreeSequenceOptions options;
  options.simple = false;
  options.ensure_connected = false;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Graph g = random_graph_with_degrees({5, 3, 2, 2}, seed, options);
    for (const Edge& e : g.edges()) EXPECT_NE(e.u, e.v);
  }
}

TEST(DegreeSequence, HubAndLeavesRealizable) {
  // Star-like: one hub of degree 5, five leaves of degree 1.
  const std::vector<int> degrees{5, 1, 1, 1, 1, 1};
  const Graph g = random_graph_with_degrees(degrees, 4);
  EXPECT_EQ(realized_degrees(g), degrees);
  EXPECT_TRUE(is_connected(g));
}

TEST(ExpectedCrossLinks, MatchesFormula) {
  EXPECT_DOUBLE_EQ(expected_cross_links(10, 10), 100.0 / 19.0);
  EXPECT_DOUBLE_EQ(expected_cross_links(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(expected_cross_links(1, 1), 1.0);
}

TEST(ExpectedCrossLinks, RejectsNegative) {
  EXPECT_THROW((void)expected_cross_links(-1, 3), InvalidArgument);
}

// Property sweep: many (n, r) combinations keep degree, simplicity and
// connectivity invariants.
class DegreeSequenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(DegreeSequenceSweep, InvariantsHold) {
  const auto [n, r, seed] = GetParam();
  if ((n * r) % 2 != 0) GTEST_SKIP() << "odd degree sum";
  if (r >= n) GTEST_SKIP() << "no simple r-regular graph with r >= n";
  const std::vector<int> degrees(static_cast<std::size_t>(n), r);
  const Graph g = random_graph_with_degrees(degrees, seed);
  EXPECT_EQ(realized_degrees(g), degrees);
  EXPECT_TRUE(is_simple(g));
  if (r >= 1) EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DegreeSequenceSweep,
    ::testing::Combine(::testing::Values(4, 8, 16, 40, 100),
                       ::testing::Values(2, 3, 5, 9),
                       ::testing::Values(1ULL, 7ULL, 1234ULL)));

// Mixed (irregular) degree sequences as found in heterogeneous pools.
class MixedDegreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedDegreeSweep, RealizesIrregularSequences) {
  std::vector<int> degrees;
  for (int i = 0; i < 12; ++i) degrees.push_back(20);
  for (int i = 0; i < 24; ++i) degrees.push_back(7);
  if (std::accumulate(degrees.begin(), degrees.end(), 0) % 2 != 0) {
    degrees.back() += 1;
  }
  const Graph g = random_graph_with_degrees(degrees, GetParam());
  EXPECT_EQ(realized_degrees(g), degrees);
  EXPECT_TRUE(is_simple(g));
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MixedDegreeSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace topo
