// Tests for the two-phase simplex LP solver.
#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "util/error.h"

namespace topo {
namespace {

LpProblem make(int vars, std::vector<double> objective) {
  LpProblem p;
  p.num_vars = vars;
  p.objective = std::move(objective);
  return p;
}

TEST(Simplex, SimpleTwoVarMaximization) {
  // max 3x + 2y st x + y <= 4, x <= 2 -> x=2, y=2, obj=10.
  LpProblem p = make(2, {3.0, 2.0});
  p.constraints.push_back({{1.0, 1.0}, ConstraintSense::kLessEqual, 4.0});
  p.constraints.push_back({{1.0, 0.0}, ConstraintSense::kLessEqual, 2.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(Simplex, BindingGreaterEqual) {
  // max -x st x >= 3 -> x = 3.
  LpProblem p = make(1, {-1.0});
  p.constraints.push_back({{1.0}, ConstraintSense::kGreaterEqual, 3.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y st x + 2y = 4, x <= 2 -> x=2, y=1.
  LpProblem p = make(2, {1.0, 1.0});
  p.constraints.push_back({{1.0, 2.0}, ConstraintSense::kEqual, 4.0});
  p.constraints.push_back({{1.0, 0.0}, ConstraintSense::kLessEqual, 2.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2.
  LpProblem p = make(1, {1.0});
  p.constraints.push_back({{1.0}, ConstraintSense::kLessEqual, 1.0});
  p.constraints.push_back({{1.0}, ConstraintSense::kGreaterEqual, 2.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p = make(1, {1.0});
  p.constraints.push_back({{-1.0}, ConstraintSense::kLessEqual, 1.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // max -x st -x <= -2  (i.e. x >= 2) -> x = 2.
  LpProblem p = make(1, {-1.0});
  p.constraints.push_back({{-1.0}, ConstraintSense::kLessEqual, -2.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem p = make(2, {1.0, 1.0});
  p.constraints.push_back({{1.0, 0.0}, ConstraintSense::kLessEqual, 1.0});
  p.constraints.push_back({{0.0, 1.0}, ConstraintSense::kLessEqual, 1.0});
  p.constraints.push_back({{1.0, 1.0}, ConstraintSense::kLessEqual, 2.0});
  p.constraints.push_back({{2.0, 2.0}, ConstraintSense::kLessEqual, 4.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroVariableFeasible) {
  LpProblem p = make(0, {});
  p.constraints.push_back({{}, ConstraintSense::kLessEqual, 1.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::kOptimal);
}

TEST(Simplex, ZeroVariableInfeasible) {
  LpProblem p = make(0, {});
  p.constraints.push_back({{}, ConstraintSense::kGreaterEqual, 1.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, RejectsMismatchedWidths) {
  LpProblem p = make(2, {1.0, 1.0});
  p.constraints.push_back({{1.0}, ConstraintSense::kLessEqual, 1.0});
  EXPECT_THROW((void)solve_lp(p), InvalidArgument);
}

TEST(Simplex, KleeMintyLikeStillSolves) {
  // A 3-D Klee-Minty cube variant: stresses pivoting rules.
  LpProblem p = make(3, {100.0, 10.0, 1.0});
  p.constraints.push_back({{1.0, 0.0, 0.0}, ConstraintSense::kLessEqual, 1.0});
  p.constraints.push_back({{20.0, 1.0, 0.0}, ConstraintSense::kLessEqual, 100.0});
  p.constraints.push_back(
      {{200.0, 20.0, 1.0}, ConstraintSense::kLessEqual, 10000.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10000.0, 1e-6);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (cap 10, 20), 2 consumers (need 15 each), maximize shipped
  // with shipping allowed only within capacity: total = 30.
  // Vars: x11, x12, x21, x22.
  LpProblem p = make(4, {1.0, 1.0, 1.0, 1.0});
  p.constraints.push_back(
      {{1.0, 1.0, 0.0, 0.0}, ConstraintSense::kLessEqual, 10.0});
  p.constraints.push_back(
      {{0.0, 0.0, 1.0, 1.0}, ConstraintSense::kLessEqual, 20.0});
  p.constraints.push_back(
      {{1.0, 0.0, 1.0, 0.0}, ConstraintSense::kLessEqual, 15.0});
  p.constraints.push_back(
      {{0.0, 1.0, 0.0, 1.0}, ConstraintSense::kLessEqual, 15.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 30.0, 1e-9);
}

TEST(Simplex, SolutionSatisfiesConstraints) {
  LpProblem p = make(3, {2.0, 3.0, 1.0});
  p.constraints.push_back(
      {{1.0, 1.0, 1.0}, ConstraintSense::kLessEqual, 10.0});
  p.constraints.push_back(
      {{2.0, 1.0, 0.0}, ConstraintSense::kLessEqual, 8.0});
  p.constraints.push_back(
      {{0.0, 1.0, 3.0}, ConstraintSense::kGreaterEqual, 3.0});
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  for (const LpConstraint& c : p.constraints) {
    double lhs = 0.0;
    for (int j = 0; j < 3; ++j) lhs += c.coeffs[static_cast<std::size_t>(j)] * s.x[static_cast<std::size_t>(j)];
    if (c.sense == ConstraintSense::kLessEqual) EXPECT_LE(lhs, c.rhs + 1e-7);
    if (c.sense == ConstraintSense::kGreaterEqual) EXPECT_GE(lhs, c.rhs - 1e-7);
  }
  for (double x : s.x) EXPECT_GE(x, -1e-9);
}

}  // namespace
}  // namespace topo
