#!/usr/bin/env sh
# Distributed sweep sharding, end to end: split one sweep's (point x run)
# cell grid across N `topobench --shard I/N` invocations sharing a cache
# dir (here run as background processes; across machines, point them at
# one shared filesystem), then warm-merge with an unsharded coordinator
# run and verify the merged table is byte-identical to a single-process
# run. See README "Distributed sweeps".
#
# usage: examples/shard_merge_demo.sh [BUILD_DIR] [SCENARIO] [SHARDS]
set -eu

build_dir="${1:-build}"
scenario="${2:-sweep_rrg_link_failures}"
shards="${3:-2}"
topobench="$build_dir/topobench"
[ -x "$topobench" ] || {
  echo "error: $topobench not built (cmake -B $build_dir -S . && cmake --build $build_dir)" >&2
  exit 1
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cache="$workdir/cache"

echo "== reference: single-process run =="
"$topobench" "$scenario" --smoke --runs 1 --out "$workdir/single.json" \
  > "$workdir/single.txt"

echo "== $shards shards, one shared cache dir =="
i=0
while [ "$i" -lt "$shards" ]; do
  "$topobench" "$scenario" --smoke --runs 1 --shard "$i/$shards" \
    --cache-dir "$cache" > "$workdir/shard$i.txt" &
  i=$((i + 1))
done
wait

echo "== coordinator: unsharded warm run merges every shard's cells =="
"$topobench" "$scenario" --smoke --runs 1 --cache-dir "$cache" \
  --out "$workdir/merged.json" > "$workdir/merged.txt"

diff "$workdir/single.txt" "$workdir/merged.txt"
diff "$workdir/single.json" "$workdir/merged.json"
echo "merged output is byte-identical to the single-process run"
