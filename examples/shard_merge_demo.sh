#!/usr/bin/env sh
# Supervised distributed sweeps, end to end: `topobench orchestrate`
# spawns N shard workers over one shared cache dir, watches exit codes
# and per-cell heartbeats, retries crashed or stalled stripes with
# exponential backoff, and finishes with the coordinator merge — output
# byte-identical to a single-process run. The second half injects a
# fault (every worker SIGKILLed after its first published cell, via
# TOPOBENCH_FAULT) and verifies the orchestrator still converges to the
# exact same bytes. See README "Fault tolerance" and "Distributed
# sweeps".
#
# usage: examples/shard_merge_demo.sh [BUILD_DIR] [SCENARIO] [WORKERS]
set -eu

build_dir="${1:-build}"
scenario="${2:-sweep_rrg_link_failures}"
workers="${3:-2}"
topobench="$build_dir/topobench"
[ -x "$topobench" ] || {
  echo "error: $topobench not built (cmake -B $build_dir -S . && cmake --build $build_dir)" >&2
  exit 1
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
spec="$workdir/spec.json"

echo "== reference: single-process run =="
"$topobench" --dump-spec "$scenario" "$spec"
"$topobench" --spec "$spec" --smoke --runs 1 --out "$workdir/single.json" \
  > "$workdir/single.txt"

echo "== orchestrate: $workers supervised shard workers + merge =="
"$topobench" orchestrate --spec "$spec" --cache-dir "$workdir/cache" \
  --workers "$workers" --smoke --runs 1 --out "$workdir/merged.json" \
  > "$workdir/merged.txt"

diff "$workdir/single.txt" "$workdir/merged.txt"
diff "$workdir/single.json" "$workdir/merged.json"
echo "merged output is byte-identical to the single-process run"

echo "== chaos: every worker crashes after its first published cell =="
TOPOBENCH_FAULT=crash_after_cells:1 \
  "$topobench" orchestrate --spec "$spec" --cache-dir "$workdir/chaos" \
  --workers "$workers" --max-retries 8 --backoff 50 --smoke --runs 1 \
  --out "$workdir/chaos.json" > "$workdir/chaos.txt"

diff "$workdir/single.txt" "$workdir/chaos.txt"
diff "$workdir/single.json" "$workdir/chaos.json"
echo "crash-injected run recovered to byte-identical output"
