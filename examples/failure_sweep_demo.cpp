// Scenario-engine demo: declare a failure sweep programmatically.
//
// The registered `sweep_*` scenarios (see `topobench --list`) are built
// exactly like this: pick a topology family from the registry, add sweep
// axes (here: link failures x capacity derating), and hand the spec to the
// SweepRunner, which shards every (sweep-point x run) cell across the
// thread pool with deterministic seeds. ~25 lines for a two-axis
// robustness study.
#include <iostream>

#include "scenario/sweep.h"
#include "scenario/topo_registry.h"
#include "util/table.h"

int main() {
  using namespace topo;
  using namespace topo::scenario;

  ScenarioSpec spec;
  spec.name = "demo_failure_grid";
  spec.description =
      "RRG(24, 12, 8) under link failures x capacity derating";
  spec.topology = {"random_regular",
                   {{"n", 24}, {"ports", 12}, {"degree", 8}}};
  spec.axes = {{"link_failure_fraction", {0.0, 0.1, 0.2}, {}},
               {"capacity_factor", {1.0, 0.5}, {}}};
  spec.reuse_topology = true;  // axes are eval-side: build once per run

  SweepRunConfig config;
  config.runs = 3;
  config.epsilon = 0.1;
  config.master_seed = 1;

  const SweepResult result = SweepRunner(spec, config).run();
  print_banner(std::cout, spec.description);
  sweep_table(result).print(std::cout);
  std::cout << "\nEvery cell above = 3 seeded runs; rerun the binary and "
               "the numbers repeat exactly.\n";
  return 0;
}
