// Packet-level simulation demo: fluid optimum vs MPTCP on real queues.
//
//   $ ./packet_sim_demo [--switches N] [--subflows K]
//
// Builds a random regular topology, computes the fluid (LP) throughput,
// then runs the discrete-event simulator: TCP with K subflows striped
// over sampled shortest paths, RED-style queues, per-packet ACKs. Shows
// the paper's §8.2 point: packet-level transport gets within a few
// percent of the fluid optimum.
#include <algorithm>
#include <iostream>

#include "core/topobench.h"

int main(int argc, char** argv) {
  using namespace topo;
  const Flags flags(argc, argv, {"switches", "subflows"});
  const int n = flags.get_int("switches", 16);
  const int subflows = flags.get_int("subflows", 8);

  // Mildly oversubscribed RRG so the fluid optimum sits just below 1.
  const int degree = 8;
  const int servers_per_switch = 5;
  const BuiltTopology topology =
      random_regular_topology(n, degree + servers_per_switch, degree, 42);

  std::cout << "== Packet-level vs fluid throughput ==\n\n";
  std::cout << "Topology: RRG with " << n << " switches, degree " << degree
            << ", " << servers_per_switch << " servers each ("
            << topology.servers.total() << " servers).\n";

  EvalOptions options;
  options.flow.epsilon = 0.05;
  const ThroughputResult fluid = evaluate_throughput(topology, options, 7);
  std::cout << "Fluid (optimal-routing) throughput: " << fluid.lambda
            << " per server (certified within " << fluid.gap * 100
            << "% of optimal)\n\n";

  sim::SimParams params;
  params.subflows = subflows;
  params.duration_ns = 30'000'000;
  params.warmup_ns = 15'000'000;
  sim::SimNetwork net(topology, params, 42);
  net.add_permutation_workload();
  const sim::SimulationResult packet = net.run();

  std::vector<double> goodputs;
  for (const auto& f : packet.flows) goodputs.push_back(f.goodput_gbps);
  std::sort(goodputs.begin(), goodputs.end());

  std::cout << "Packet-level MPTCP with " << subflows << " subflows over "
            << packet.flows.size() << " flows:\n";
  std::cout << "  mean goodput: " << packet.mean_normalized
            << " of line rate\n";
  std::cout << "  median:       " << goodputs[goodputs.size() / 2] << "\n";
  std::cout << "  min:          " << packet.min_normalized << "\n";
  std::cout << "  drops:        " << packet.total_drops << " packets, events "
            << packet.events_processed << "\n\n";

  const double reference = std::min(1.0, fluid.dual_bound);
  std::cout << "Packet mean reaches "
            << 100.0 * packet.mean_normalized / reference
            << "% of the fluid optimum (paper reports within a few percent "
               "with 8 subflows).\n";
  return 0;
}
