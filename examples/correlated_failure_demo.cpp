// Failure-subsystem demo: correlated blast-radius and targeted faults.
//
// The FailureSpec (core/failure.h) composes typed failure components. This
// demo applies a correlated blast-radius failure to a k=4 fat-tree — two
// epicenter switches take same-class peers down with probability 0.5 — and
// prints who died and why, then sweeps the blast probability and the
// targeted top-k betweenness cuts through the scenario engine to compare
// correlated (average-case) against adversarial (worst-case) degradation.
// Rerun the binary: every number repeats exactly (seeded draws; the
// targeted ranking is seed-free by construction).
#include <iostream>

#include "core/failure.h"
#include "scenario/sweep.h"
#include "topo/fat_tree.h"
#include "util/table.h"

int main() {
  using namespace topo;
  using namespace topo::scenario;

  const BuiltTopology tree = fat_tree_topology(4);  // 8 edge, 8 agg, 4 core

  FailureSpec blast;
  blast.correlated.epicenter_fraction = 0.1;  // 2 of 20 switches
  blast.correlated.peer_probability = 0.5;
  FailureSample sample;
  const BuiltTopology degraded = apply_failures(tree, blast, 7, &sample);

  print_banner(std::cout, "Correlated blast radius on the k=4 fat-tree");
  const auto class_name = [&](NodeId n) {
    return tree.class_names[static_cast<std::size_t>(tree.class_of(n))];
  };
  std::cout << "epicenters:";
  for (NodeId e : sample.epicenters) {
    std::cout << " " << e << " (" << class_name(e) << ")";
  }
  std::cout << "\nblast victims (same class as an epicenter):";
  for (NodeId v : sample.blast_victims) {
    std::cout << " " << v << " (" << class_name(v) << ")";
  }
  std::cout << "\nsurviving links: " << degraded.graph.num_edges() << " of "
            << tree.graph.num_edges() << "\n\n";

  // The same components as sweep axes: correlated blast probability vs
  // targeted top-k cuts, each on a fixed topology per run (reuse mode).
  SweepRunConfig config;
  config.runs = 3;
  config.epsilon = 0.1;
  config.master_seed = 1;

  ScenarioSpec correlated;
  correlated.name = "demo_blast";
  correlated.description = "fat-tree, 2 epicenters, blast probability swept";
  correlated.topology = {"fat_tree", {{"k", 4}}};
  correlated.failure.correlated.epicenter_fraction = 0.1;
  correlated.axes = {{"blast_probability", {0.0, 0.25, 0.5}, {}}};
  correlated.reuse_topology = true;
  print_banner(std::cout, correlated.description);
  sweep_table(SweepRunner(correlated, config).run()).print(std::cout);

  ScenarioSpec targeted;
  targeted.name = "demo_targeted";
  targeted.description =
      "fat-tree, top-k betweenness links cut (worst-case adversary)";
  targeted.topology = {"fat_tree", {{"k", 4}}};
  targeted.axes = {{"targeted_link_cuts", {0, 2, 4, 8}, {}}};
  targeted.reuse_topology = true;
  std::cout << "\n";
  print_banner(std::cout, targeted.description);
  sweep_table(SweepRunner(targeted, config).run()).print(std::cout);

  std::cout << "\nA handful of targeted cuts does what a much larger random "
               "loss does:\nthe ranking concentrates damage on the links "
               "shortest paths share.\n";
  return 0;
}
