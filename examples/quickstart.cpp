// Quickstart: build a random regular topology, measure its throughput,
// and compare against the paper's analytical bounds.
//
//   $ ./quickstart [--switches N] [--ports K] [--network-degree R]
//
// Walks through the core API: topology generation, workload creation,
// the max-concurrent-flow solver, and the Theorem-1 / ASPL bounds.
#include <iostream>

#include "core/topobench.h"

int main(int argc, char** argv) {
  using namespace topo;
  const Flags flags(argc, argv, {"switches", "ports", "network-degree"});
  const int n = flags.get_int("switches", 40);
  const int k = flags.get_int("ports", 20);
  const int r = flags.get_int("network-degree", 12);

  std::cout << "== topodesign quickstart ==\n\n";
  std::cout << "Building RRG(" << n << " switches, " << k << " ports, " << r
            << " network-facing) => " << (k - r)
            << " servers per switch, " << n * (k - r) << " servers total.\n";

  // 1. Build the topology (seeded: same seed, same network).
  const BuiltTopology topology = random_regular_topology(n, k, r, /*seed=*/42);

  // 2. Structural metrics vs the best any topology could do.
  const double aspl = average_shortest_path_length(topology.graph);
  const double aspl_bound = aspl_lower_bound(n, r);
  std::cout << "Average shortest path length: " << aspl << " (lower bound "
            << aspl_bound << ", ratio " << aspl / aspl_bound << ")\n";
  std::cout << "Diameter: " << diameter(topology.graph) << "\n\n";

  // 3. Throughput under random permutation traffic. lambda is the rate of
  // the worst-off flow under optimal routing; 1.0 = every server at full
  // line rate.
  EvalOptions options;
  options.flow.epsilon = 0.05;
  const ThroughputResult result =
      evaluate_throughput(topology, options, /*traffic_seed=*/7);
  std::cout << "Permutation throughput (certified lower bound): "
            << result.lambda << "\n";
  std::cout << "Certified optimality gap: " << result.gap * 100 << "%\n";

  // 4. Compare against the universal upper bound for ANY topology built
  // from the same switches (Theorem 1 + the Cerf et al. ASPL bound).
  const double f = static_cast<double>(result.total_demand);
  const double universal = homogeneous_throughput_upper_bound(n, r, f);
  std::cout << "Upper bound for any topology with these switches: "
            << universal << "\n";
  std::cout << "This random graph achieves " << 100 * result.lambda / universal
            << "% of it.\n\n";

  // 5. Where does the capacity go? (the paper's T = C*U/(<D>*AS*f)).
  std::cout << "Decomposition: utilization U = " << result.utilization
            << ", mean shortest distance <D> = " << result.demand_weighted_spl
            << ", stretch AS = " << result.stretch << "\n";
  std::cout << "Identity check C*U/(<D>*AS*f) = "
            << topology.graph.total_directed_capacity() * result.utilization /
                   (result.demand_weighted_spl * result.stretch *
                    result.total_demand)
            << " == lambda = " << result.lambda << "\n";
  return 0;
}
