// Heterogeneous network design advisor (the paper's §5 rules, applied).
//
//   $ ./heterogeneous_design [--large N] [--small N] [--large-ports K]
//                            [--small-ports K] [--servers S]
//
// Thin launcher: the advisor itself lives in src/search/case_studies.h so
// the search layer and the tests share it. Output is byte-identical to
// the historical standalone implementation.
#include <iostream>

#include "search/case_studies.h"

int main(int argc, char** argv) {
  return topo::search::heterogeneous_design_case_study(argc, argv, std::cout);
}
