// Heterogeneous network design advisor (the paper's §5 rules, applied).
//
//   $ ./heterogeneous_design [--large N] [--small N] [--large-ports K]
//                            [--small-ports K] [--servers S]
//
// Given a pool of two switch types and a server count, this example
// evaluates the design space the paper explores — server placement splits
// and cross-type wiring volumes — and prints the measured throughput
// surface plus the paper's recommendation (proportional placement,
// vanilla random wiring, cross-cut kept above the drop threshold).
#include <iostream>

#include "core/topobench.h"

int main(int argc, char** argv) {
  using namespace topo;
  const Flags flags(
      argc, argv, {"large", "small", "large-ports", "small-ports", "servers"});
  TwoTypeSpec base;
  base.num_large = flags.get_int("large", 10);
  base.num_small = flags.get_int("small", 20);
  base.large_ports = flags.get_int("large-ports", 24);
  base.small_ports = flags.get_int("small-ports", 12);
  const int servers = flags.get_int("servers", 220);

  std::cout << "== Heterogeneous design advisor ==\n\n";
  std::cout << "Pool: " << base.num_large << " large switches ("
            << base.large_ports << " ports) + " << base.num_small
            << " small switches (" << base.small_ports << " ports); "
            << servers << " servers to attach.\n\n";

  EvalOptions options;
  options.flow.epsilon = 0.08;
  const int runs = 3;

  // 1. Server placement sweep at vanilla random wiring.
  std::cout << "Server placement (x = servers on large switches relative to "
               "the port-proportional split):\n";
  TablePrinter placement({"x", "servers_per_large", "servers_per_small",
                          "throughput"});
  double best_lambda = 0.0;
  double best_ratio = 1.0;
  for (double x : {0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
    const TwoTypeSpec spec = with_server_split(base, servers, x);
    if (spec.servers_per_large >= spec.large_ports) continue;
    const TopologyBuilder builder = [spec](std::uint64_t seed) {
      return build_two_type(spec, seed);
    };
    const ExperimentStats stats = run_experiment(builder, options, runs, 7);
    placement.add_row({x, static_cast<long long>(spec.servers_per_large),
                       static_cast<long long>(spec.servers_per_small),
                       stats.lambda.mean});
    if (stats.lambda.mean > best_lambda) {
      best_lambda = stats.lambda.mean;
      best_ratio = x;
    }
  }
  placement.print(std::cout);
  std::cout << "Best split found at x = " << best_ratio
            << " (paper: x = 1, proportional, is always among the best).\n\n";

  // 2. Cross-type wiring sweep at the proportional split.
  std::cout << "Cross-type wiring (x = cross links relative to vanilla "
               "randomness), proportional servers:\n";
  const TwoTypeSpec proportional = with_server_split(base, servers, 1.0);
  TablePrinter wiring({"x", "throughput", "eqn1_bound"});
  for (double x : {0.15, 0.3, 0.5, 0.75, 1.0, 1.5}) {
    TwoTypeSpec spec = proportional;
    spec.cross_fraction = x;
    const BuiltTopology t = build_two_type(spec, 11);
    const ThroughputResult r = evaluate_throughput(t, options, 13);
    std::vector<char> in_large(static_cast<std::size_t>(t.graph.num_nodes()),
                               0);
    for (int i = 0; i < spec.num_large; ++i) {
      in_large[static_cast<std::size_t>(i)] = 1;
    }
    const double n1 =
        static_cast<double>(spec.num_large) * spec.servers_per_large;
    const double n2 =
        static_cast<double>(spec.num_small) * spec.servers_per_small;
    const TwoClusterBound bound =
        two_cluster_throughput_bound(t.graph, in_large, n1, n2);
    wiring.add_row({x, r.lambda, bound.combined});
  }
  wiring.print(std::cout);

  // 3. The drop threshold: how much clustering is safe (useful for cable
  // optimization, per §6.2).
  const double n1 = static_cast<double>(proportional.num_large) *
                    proportional.servers_per_large;
  const double n2 = static_cast<double>(proportional.num_small) *
                    proportional.servers_per_small;
  const double cbar_star = cross_capacity_threshold(best_lambda, n1, n2);
  const double x_star =
      cbar_star / (2.0 * two_type_expected_cross(proportional));
  std::cout << "\nRecommendation: proportional servers ("
            << proportional.servers_per_large << " per large, "
            << proportional.servers_per_small
            << " per small), random wiring. Cross-type links can be reduced "
               "to ~"
            << 100.0 * x_star
            << "% of vanilla randomness (e.g. to shorten cables) before "
               "throughput must drop.\n";
  return 0;
}
