// Topology zoo: the homogeneous design space on one table.
//
//   $ ./topology_zoo [--servers-per-switch N]
//
// Builds the classic candidates with comparable equipment (64 switches,
// network degree 6) and prints throughput, path-length, and expansion
// metrics side by side — the "not all flat topologies are equal" point of
// the paper, quantified.
#include <iostream>

#include "core/topobench.h"
#include "graph/spectral.h"
#include "topo/small_world.h"

namespace topo {
namespace {

void report_row(TablePrinter& table, const std::string& name,
                const BuiltTopology& t, double lambda) {
  const SpectralResult spectrum = adjacency_spectrum(t.graph, 7, 500);
  int max_degree = 0;
  for (NodeId n = 0; n < t.graph.num_nodes(); ++n) {
    max_degree = std::max(max_degree, t.graph.degree(n));
  }
  table.add_row({name, static_cast<long long>(t.graph.num_nodes()),
                 static_cast<long long>(max_degree),
                 static_cast<long long>(t.servers.total()), lambda,
                 average_shortest_path_length(t.graph),
                 static_cast<long long>(diameter(t.graph)), spectrum.gap});
}

}  // namespace
}  // namespace topo

int main(int argc, char** argv) {
  using namespace topo;
  const Flags flags(argc, argv, {"servers-per-switch"});
  const int servers = flags.get_int("servers-per-switch", 3);

  std::cout << "== Topology zoo: 64 switches, network degree 6, " << servers
            << " servers per switch ==\n"
            << "(fat-tree uses its own structure: k=8, 80 switches, 128 "
               "servers at degree <= 8)\n\n";

  EvalOptions options;
  options.flow.epsilon = 0.06;
  const std::uint64_t traffic_seed = 11;

  TablePrinter table({"topology", "switches", "degree", "servers",
                      "throughput", "aspl", "diameter", "spectral_gap"});

  {
    const BuiltTopology t = random_regular_topology(64, 6 + servers, 6, 42);
    report_row(table, "random_regular", t,
               evaluate_throughput(t, options, traffic_seed).lambda);
  }
  {
    const BuiltTopology t = hypercube_topology(6, servers);
    report_row(table, "hypercube_d6", t,
               evaluate_throughput(t, options, traffic_seed).lambda);
  }
  {
    const BuiltTopology t = generalized_hypercube_topology({4, 4, 4}, servers);
    report_row(table, "gen_hypercube_4x4x4", t,
               evaluate_throughput(t, options, traffic_seed).lambda);
  }
  {
    const BuiltTopology t = small_world_topology(64, 2, 4, servers, 42);
    report_row(table, "small_world_2+4", t,
               evaluate_throughput(t, options, traffic_seed).lambda);
  }
  {
    const BuiltTopology t = torus2d_topology(8, 8, servers);
    report_row(table, "torus_8x8", t,
               evaluate_throughput(t, options, traffic_seed).lambda);
  }
  {
    const BuiltTopology t = fat_tree_topology(8);
    report_row(table, "fat_tree_k8", t,
               evaluate_throughput(t, options, traffic_seed).lambda);
  }
  table.print(std::cout);

  std::cout << "\nReading guide (watch the degree column — structured "
               "designs spend different port budgets): at equal degree 6 "
               "the random graph beats the hypercube and the small-world "
               "design, pairing low ASPL with a large spectral gap — the "
               "paper's homogeneous result. The generalized hypercube "
               "buys its throughput with 9 ports per switch; the torus "
               "(degree 4) shows the price of pure locality; bipartite "
               "spectra (gap 0) flag the weaker expanders.\n";
  return 0;
}
