// VL2 rewiring case study (the paper's §7 headline result).
//
//   $ ./vl2_rewiring [--da N] [--di N] [--runs N]
//
// Builds Microsoft's VL2 topology for the given aggregation/core port
// counts, verifies it delivers full throughput at its nominal size, then
// rewires the *identical* switch pool — ToR uplinks spread over
// aggregation AND core switches in proportion to port counts, all other
// ports wired uniformly at random — and binary-searches the largest ToR
// count that still gets full throughput.
#include <iostream>

#include "core/topobench.h"

int main(int argc, char** argv) {
  using namespace topo;
  const Flags flags(argc, argv, {"da", "di", "runs"});
  Vl2Params params;
  params.d_a = flags.get_int("da", 12);
  params.d_i = flags.get_int("di", 12);
  const int runs = flags.get_int("runs", 3);

  std::cout << "== VL2 rewiring case study ==\n\n";
  std::cout << "Equipment: " << params.d_i << " aggregation switches ("
            << params.d_a << " x 10G ports), " << params.d_a / 2
            << " core switches (" << params.d_i
            << " x 10G ports), ToRs with 20 x 1G servers + 2 x 10G uplinks.\n";

  const int nominal = vl2_nominal_tors(params);
  std::cout << "VL2 supports " << nominal << " ToRs (" << 20 * nominal
            << " servers) at full throughput by construction.\n";

  EvalOptions options;
  options.flow.epsilon = 0.05;

  // Sanity check VL2 itself through the same solver.
  const BuiltTopology vl2 = vl2_topology(params);
  const ThroughputResult vl2_result = evaluate_throughput(vl2, options, 3);
  std::cout << "Solver check on VL2 at nominal size: lambda = "
            << vl2_result.lambda << " (expected ~1.0)\n\n";

  // Binary search the rewired design.
  FullThroughputSearch search;
  search.builder = [&](int tors, std::uint64_t seed) {
    return rewired_vl2_topology(params, tors, seed);
  };
  search.min_tors = nominal / 2;
  search.max_tors = rewired_vl2_max_tors(params);
  search.threshold = 0.95;
  search.runs = runs;
  search.options = options;
  const int rewired = max_tors_at_full_throughput(search, /*master_seed=*/17);

  std::cout << "Rewired pool supports " << rewired << " ToRs ("
            << 20 * rewired << " servers) at full throughput across " << runs
            << " runs.\n";
  std::cout << "Improvement over VL2: "
            << 100.0 * (static_cast<double>(rewired) / nominal - 1.0)
            << "% more servers from the same equipment.\n";
  std::cout << "(The paper reports up to 43% at DA=20, DI=28, growing with "
               "scale.)\n";
  return 0;
}
