// VL2 rewiring case study (the paper's §7 headline result).
//
//   $ ./vl2_rewiring [--da N] [--di N] [--runs N]
//
// Thin launcher: the study itself lives in src/search/case_studies.h so
// the search layer and the tests share it. Output is byte-identical to
// the historical standalone implementation.
#include <iostream>

#include "search/case_studies.h"

int main(int argc, char** argv) {
  return topo::search::vl2_rewiring_case_study(argc, argv, std::cout);
}
