// Incremental expansion demo: growing a data center one switch at a time.
//
//   $ ./expansion_demo [--start N] [--grow N]
//
// Starts from a random regular network and repeatedly splices new
// switches into existing links (the Jellyfish expansion model the paper
// builds on). After each growth step, prints throughput per server and
// how it compares to tearing everything down and rebuilding from scratch.
#include <iostream>

#include "core/topobench.h"
#include "topo/expansion.h"

int main(int argc, char** argv) {
  using namespace topo;
  const Flags flags(argc, argv, {"start", "grow"});
  const int start = flags.get_int("start", 20);
  const int grow = flags.get_int("grow", 16);
  const int degree = 8;
  const int servers = 4;

  std::cout << "== Incremental expansion demo ==\n\n";
  std::cout << "Start: RRG with " << start << " switches (degree " << degree
            << ", " << servers << " servers each). Growing by " << grow
            << " switches, four at a time.\n\n";

  EvalOptions options;
  options.flow.epsilon = 0.06;

  BuiltTopology network = random_regular_topology(
      start, degree + servers, degree, /*seed=*/42);

  TablePrinter table({"switches", "servers", "lambda_grown", "lambda_scratch",
                      "penalty_percent"});
  for (int grown = 0; grown <= grow; grown += 4) {
    if (grown > 0) {
      expand_topology(network, 4, degree, servers,
                      Rng::derive_seed(42, static_cast<std::uint64_t>(grown)));
    }
    const int size = start + grown;
    const double lambda_grown =
        evaluate_throughput(network, options, 7).lambda;
    const BuiltTopology scratch =
        random_regular_topology(size, degree + servers, degree, 43 + grown);
    const double lambda_scratch =
        evaluate_throughput(scratch, options, 7).lambda;
    table.add_row({static_cast<long long>(size),
                   static_cast<long long>(network.servers.total()),
                   lambda_grown, lambda_scratch,
                   100.0 * (1.0 - lambda_grown / lambda_scratch)});
  }
  table.print(std::cout);
  std::cout << "\nExpansion keeps every existing switch's wiring intact "
               "(only spliced links move) and loses almost nothing against "
               "a from-scratch rebuild — the incremental-growth story that "
               "motivates random topologies.\n";
  return 0;
}
