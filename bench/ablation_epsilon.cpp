// Ablation: accuracy/time trade-off of the FPTAS against the exact LP.
//
// DESIGN.md calls out the choice of solver (Garg-Konemann FPTAS with a
// certified primal-dual gap instead of CPLEX). This bench quantifies it:
// for epsilon in {0.2, 0.1, 0.05, 0.02}, measure the certified gap, the
// TRUE gap against the exact simplex LP, and the runtime.
#include <chrono>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace topo;
  const bench::BenchConfig config =
      bench::parse_bench_config(argc, argv, /*quick_runs=*/3, /*full_runs=*/10);

  print_banner(std::cout,
               "Ablation: FPTAS certified gap vs true gap vs runtime "
               "(12-switch RRG, 8 commodities, exact LP reference)");
  TablePrinter table({"epsilon", "lambda_fptas", "lambda_exact",
                      "certified_gap", "true_gap", "phases", "ms"});

  for (double epsilon : {0.2, 0.1, 0.05, 0.02}) {
    std::vector<double> fptas_values;
    std::vector<double> exact_values;
    std::vector<double> certified;
    std::vector<double> true_gaps;
    std::vector<double> phases;
    std::vector<double> times_ms;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed = Rng::derive_seed(config.seed, 100 + run);
      const Graph g = random_regular_graph(12, 4, seed);
      Rng rng(seed + 7);
      std::vector<Commodity> commodities;
      for (int i = 0; i < 8; ++i) {
        const int src = rng.uniform_int(0, 11);
        int dst = rng.uniform_int(0, 11);
        if (dst == src) dst = (dst + 1) % 12;
        commodities.push_back({src, dst, 1.0 + rng.uniform()});
      }
      const McfLpResult exact = solve_concurrent_flow_lp(g, commodities);

      FlowOptions options;
      options.epsilon = epsilon;
      const auto start = std::chrono::steady_clock::now();
      const ThroughputResult approx =
          max_concurrent_flow(g, commodities, options);
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);

      fptas_values.push_back(approx.lambda);
      exact_values.push_back(exact.lambda);
      certified.push_back(approx.gap);
      true_gaps.push_back(1.0 - approx.lambda / exact.lambda);
      phases.push_back(approx.phases);
      times_ms.push_back(elapsed.count() / 1000.0);
    }
    table.add_row({epsilon, mean_of(fptas_values), mean_of(exact_values),
                   mean_of(certified), mean_of(true_gaps), mean_of(phases),
                   mean_of(times_ms)});
  }
  table.emit(std::cout, config.csv);
  std::cout << "Expected: true_gap well below certified_gap; runtime grows "
               "as epsilon shrinks. The default 0.08 certified target "
               "keeps true error around ~1-3%.\n";
  return 0;
}
