// Frozen seed packet simulator (see baseline_sim.h). Verbatim seed
// behaviour; do not optimize.
#include "baseline_sim.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "sim/routing.h"
#include "util/error.h"

namespace topo::bench::seedsim {

void EventQueue::schedule(SimTime when, EventHandler* handler,
                          std::uint64_t cookie) {
  require(handler != nullptr, "EventQueue::schedule requires a handler");
  require(when >= now_, "cannot schedule events in the past");
  heap_.push(Event{when, next_seq_++, handler, cookie});
}

std::uint64_t EventQueue::run_until(SimTime end) {
  std::uint64_t processed = 0;
  while (!heap_.empty() && heap_.top().when <= end) {
    const Event event = heap_.top();
    heap_.pop();
    now_ = event.when;
    event.handler->on_event(event.cookie);
    ++processed;
  }
  now_ = end;
  return processed;
}

SimLink::SimLink(EventQueue* queue, double rate_gbps, SimTime delay_ns,
                 int queue_packets, PacketReceiver* receiver, Rng* rng)
    : events_(queue),
      rate_gbps_(rate_gbps),
      delay_ns_(delay_ns),
      queue_capacity_(queue_packets),
      receiver_(receiver),
      rng_(rng) {
  require(queue != nullptr && receiver != nullptr,
          "SimLink requires a queue and receiver");
  require(rate_gbps > 0.0, "link rate must be positive");
  require(queue_packets >= 1, "queue capacity must be >= 1");
}

bool SimLink::enqueue(Packet* packet) {
  if (transmitting_ == nullptr) {
    start_transmission(packet);
    return true;
  }
  const int backlog = static_cast<int>(queue_.size());
  if (backlog >= queue_capacity_) {
    ++drops_;
    return false;
  }
  if (rng_ != nullptr && !packet->is_ack) {
    const double fill = static_cast<double>(backlog) / queue_capacity_;
    if (fill > kRedStart) {
      const double p =
          kRedMaxProbability * (fill - kRedStart) / (1.0 - kRedStart);
      if (rng_->chance(p)) {
        ++drops_;
        return false;
      }
    }
  }
  queue_.push_back(packet);
  return true;
}

void SimLink::on_event(std::uint64_t cookie) {
  if (cookie == kTxDone) {
    in_flight_.push_back(transmitting_);
    events_->schedule(events_->now() + delay_ns_, this, kArrival);
    transmitting_ = nullptr;
    if (!queue_.empty()) {
      Packet* next = queue_.front();
      queue_.pop_front();
      start_transmission(next);
    }
  } else {
    Packet* packet = in_flight_.front();
    in_flight_.pop_front();
    receiver_->packet_arrived(packet);
  }
}

void SimLink::start_transmission(Packet* packet) {
  transmitting_ = packet;
  const double bits = 8.0 * packet->size_bytes;
  const auto tx_ns = static_cast<SimTime>(bits / rate_gbps_);
  events_->schedule(events_->now() + (tx_ns == 0 ? 1 : tx_ns), this, kTxDone);
}

TcpSubflow::TcpSubflow(TransportEnv* env, int flow_id, int subflow_id,
                       std::vector<int> route_forward,
                       std::vector<int> route_reverse, const TcpParams& params)
    : env_(env),
      flow_id_(flow_id),
      subflow_id_(subflow_id),
      route_forward_(std::move(route_forward)),
      route_reverse_(std::move(route_reverse)),
      params_(params),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh),
      rto_ns_(params.min_rto_ns) {
  require(env != nullptr, "TcpSubflow requires an environment");
  require(!route_forward_.empty() && !route_reverse_.empty(),
          "TcpSubflow requires non-empty routes");
}

void TcpSubflow::start(SimTime at) {
  env_->events().schedule(at, this, kStartCookieBit);
}

void TcpSubflow::try_send() {
  while (static_cast<double>(snd_next_ - snd_una_) < cwnd_) {
    send_segment(snd_next_, /*is_retransmit=*/false);
    ++snd_next_;
  }
}

void TcpSubflow::send_segment(std::int64_t seq, bool is_retransmit) {
  Packet* p = env_->alloc_packet();
  p->route = route_forward_;
  p->hop = 0;
  p->flow_id = flow_id_;
  p->subflow_id = subflow_id_;
  p->seq = seq;
  p->ack = -1;
  p->is_ack = false;
  p->size_bytes = params_.packet_bytes;
  p->sent_at = env_->events().now();
  if (is_retransmit) ++retransmits_;
  env_->inject(p);
}

void TcpSubflow::send_ack(SimTime echo_sent_at) {
  Packet* p = env_->alloc_packet();
  p->route = route_reverse_;
  p->hop = 0;
  p->flow_id = flow_id_;
  p->subflow_id = subflow_id_;
  p->seq = 0;
  p->ack = rcv_next_;
  p->is_ack = true;
  p->size_bytes = params_.ack_bytes;
  p->sent_at = echo_sent_at;
  env_->inject(p);
}

void TcpSubflow::handle_data(Packet* packet) {
  const std::int64_t seq = packet->seq;
  const SimTime echo = packet->sent_at;
  env_->free_packet(packet);
  if (seq == rcv_next_) {
    ++rcv_next_;
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
    }
  } else if (seq > rcv_next_) {
    out_of_order_.insert(seq);
  }
  send_ack(echo);
}

void TcpSubflow::handle_ack(Packet* packet) {
  const std::int64_t ackno = packet->ack;
  const SimTime echo = packet->sent_at;
  env_->free_packet(packet);

  const SimTime now = env_->events().now();
  if (now > echo) {
    const SimTime sample = now - echo;
    if (srtt_ns_ == 0) {
      srtt_ns_ = sample;
      rttvar_ns_ = sample / 2;
    } else {
      const auto diff = sample > srtt_ns_ ? sample - srtt_ns_ : srtt_ns_ - sample;
      rttvar_ns_ = (3 * rttvar_ns_ + diff) / 4;
      srtt_ns_ = (7 * srtt_ns_ + sample) / 8;
    }
    rto_ns_ = std::max(params_.min_rto_ns, srtt_ns_ + 4 * rttvar_ns_);
  }

  if (ackno > snd_una_) {
    const double newly = static_cast<double>(ackno - snd_una_);
    snd_una_ = ackno;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (ackno >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        send_segment(snd_una_, /*is_retransmit=*/true);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += newly;
    } else {
      cwnd_ += params_.increase_scale * newly / cwnd_;
    }
    arm_rto();
    try_send();
  } else if (ackno == snd_una_ && snd_una_ < snd_next_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recover_ = snd_next_;
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = ssthresh_;
      send_segment(snd_una_, /*is_retransmit=*/true);
    } else if (in_recovery_ && dup_acks_ > 3) {
      cwnd_ += 1.0;
      try_send();
    }
  }
}

void TcpSubflow::arm_rto() {
  ++rto_generation_;
  env_->events().schedule(env_->events().now() + rto_ns_, this,
                          rto_generation_);
}

void TcpSubflow::on_event(std::uint64_t cookie) {
  if (cookie & kStartCookieBit) {
    if (!started_) {
      started_ = true;
      arm_rto();
      try_send();
    }
    return;
  }
  if (cookie != rto_generation_) return;  // superseded timer
  on_rto();
}

void TcpSubflow::on_rto() {
  if (snd_una_ >= snd_next_) {
    arm_rto();
    return;
  }
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = params_.initial_cwnd;
  dup_acks_ = 0;
  in_recovery_ = false;
  snd_next_ = snd_una_;
  rto_ns_ = std::min<SimTime>(rto_ns_ * 2, 500'000'000);
  arm_rto();
  try_send();
}

SeedSimNetwork::SeedSimNetwork(const BuiltTopology& topology,
                               const Params& params, std::uint64_t seed)
    : topology_(topology),
      params_(params),
      rng_(seed),
      server_home_(topology.servers.server_home()) {
  require(params.subflows >= 1, "at least one subflow required");
  require(params.warmup_ns < params.duration_ns,
          "warmup must precede the end of the simulation");
  const Graph& g = topology_.graph;

  links_.reserve(2 * static_cast<std::size_t>(g.num_edges()) +
                 2 * server_home_.size());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double rate = g.edge(e).capacity * params_.server_rate_gbps;
    links_.push_back(std::make_unique<SimLink>(
        &events_, rate, params_.link_delay_ns, params_.queue_packets, this,
        &rng_));
    links_.push_back(std::make_unique<SimLink>(
        &events_, rate, params_.link_delay_ns, params_.queue_packets, this,
        &rng_));
  }
  for (std::size_t s = 0; s < server_home_.size(); ++s) {
    links_.push_back(std::make_unique<SimLink>(
        &events_, params_.server_rate_gbps, params_.link_delay_ns,
        params_.queue_packets, this, &rng_));
    links_.push_back(std::make_unique<SimLink>(
        &events_, params_.server_rate_gbps, params_.link_delay_ns,
        params_.queue_packets, this, &rng_));
  }
}

SeedSimNetwork::~SeedSimNetwork() = default;

int SeedSimNetwork::host_uplink(int server) const {
  return 2 * topology_.graph.num_edges() + 2 * server;
}
int SeedSimNetwork::host_downlink(int server) const {
  return 2 * topology_.graph.num_edges() + 2 * server + 1;
}

const std::vector<int>& SeedSimNetwork::dist_to(NodeId dst_switch) {
  auto it = dist_cache_.find(dst_switch);
  if (it == dist_cache_.end()) {
    it = dist_cache_.emplace(dst_switch,
                             bfs_distances(topology_.graph, dst_switch))
             .first;
  }
  return it->second;
}

void SeedSimNetwork::add_flow(int src_server, int dst_server) {
  require(src_server >= 0 &&
              src_server < static_cast<int>(server_home_.size()) &&
              dst_server >= 0 &&
              dst_server < static_cast<int>(server_home_.size()),
          "server id out of range");
  require(src_server != dst_server, "flow endpoints must differ");

  const NodeId src_switch = server_home_[static_cast<std::size_t>(src_server)];
  const NodeId dst_switch = server_home_[static_cast<std::size_t>(dst_server)];

  FlowRecord record;
  record.src_server = src_server;
  record.dst_server = dst_server;

  TcpParams tcp;
  tcp.packet_bytes = params_.packet_bytes;
  tcp.increase_scale =
      params_.ewtcp_coupling ? 1.0 / params_.subflows : 1.0;

  const int flow_id = static_cast<int>(flows_.size());
  for (int k = 0; k < params_.subflows; ++k) {
    std::vector<int> forward{host_uplink(src_server)};
    if (src_switch != dst_switch) {
      const auto arcs = topo::sim::sample_shortest_arc_path(
          topology_.graph, src_switch, dst_switch, dist_to(dst_switch), rng_);
      forward.insert(forward.end(), arcs.begin(), arcs.end());
    }
    forward.push_back(host_downlink(dst_server));

    std::vector<int> reverse{host_uplink(dst_server)};
    if (src_switch != dst_switch) {
      const auto arcs = topo::sim::sample_shortest_arc_path(
          topology_.graph, dst_switch, src_switch, dist_to(src_switch), rng_);
      reverse.insert(reverse.end(), arcs.begin(), arcs.end());
    }
    reverse.push_back(host_downlink(src_server));

    record.subflows.push_back(std::make_unique<TcpSubflow>(
        this, flow_id, k, std::move(forward), std::move(reverse), tcp));
  }
  flows_.push_back(std::move(record));

  const SimTime jitter = params_.start_jitter_ns > 0
                             ? static_cast<SimTime>(rng_.uniform() *
                                                    static_cast<double>(
                                                        params_.start_jitter_ns))
                             : 0;
  for (auto& sub : flows_.back().subflows) {
    sub->start(events_.now() + 1 + jitter);
  }
}

Packet* SeedSimNetwork::alloc_packet() {
  if (pool_free_.empty()) {
    pool_storage_.push_back(std::make_unique<Packet>());
    pool_free_.push_back(pool_storage_.back().get());
  }
  Packet* p = pool_free_.back();
  pool_free_.pop_back();
  return p;
}

void SeedSimNetwork::free_packet(Packet* packet) {
  require(packet != nullptr, "free_packet requires a packet");
  pool_free_.push_back(packet);
}

void SeedSimNetwork::inject(Packet* packet) {
  packet->hop = 0;
  require(!packet->route.empty(), "packet must carry a route");
  SimLink& first = *links_[static_cast<std::size_t>(packet->route.front())];
  if (!first.enqueue(packet)) {
    ++dropped_at_inject_;
    free_packet(packet);
  }
}

void SeedSimNetwork::packet_arrived(Packet* packet) {
  if (packet->hop + 1 < packet->route.size()) {
    ++packet->hop;
    SimLink& next =
        *links_[static_cast<std::size_t>(packet->route[packet->hop])];
    if (!next.enqueue(packet)) free_packet(packet);
    return;
  }
  FlowRecord& flow = flows_[static_cast<std::size_t>(packet->flow_id)];
  TcpSubflow& sub = *flow.subflows[static_cast<std::size_t>(packet->subflow_id)];
  if (packet->is_ack) {
    sub.handle_ack(packet);
  } else {
    sub.handle_data(packet);
  }
}

SeedSimResult SeedSimNetwork::run() {
  SeedSimResult result;
  result.events_processed += events_.run_until(params_.warmup_ns);
  for (auto& flow : flows_) {
    flow.delivered_at_warmup.clear();
    for (const auto& sub : flow.subflows) {
      flow.delivered_at_warmup.push_back(sub->delivered_packets());
    }
  }
  result.events_processed += events_.run_until(params_.duration_ns);

  const double window_ns =
      static_cast<double>(params_.duration_ns - params_.warmup_ns);
  double sum_norm = 0.0;
  for (const auto& flow : flows_) {
    std::int64_t delivered = 0;
    for (std::size_t k = 0; k < flow.subflows.size(); ++k) {
      delivered += flow.subflows[k]->delivered_packets() -
                   flow.delivered_at_warmup[k];
    }
    const double bits =
        static_cast<double>(delivered) * 8.0 * params_.packet_bytes;
    const double goodput = bits / window_ns;
    result.goodputs_gbps.push_back(goodput);
    sum_norm += goodput / params_.server_rate_gbps;
  }
  result.mean_normalized =
      flows_.empty() ? 0.0 : sum_norm / static_cast<double>(flows_.size());
  return result;
}

}  // namespace topo::bench::seedsim
