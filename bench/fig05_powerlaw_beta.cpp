// Thin launcher for the fig05_powerlaw_beta scenario (the experiment itself lives in
// src/scenario/figures/fig05_powerlaw_beta.cc; `topobench fig05_powerlaw_beta`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig05_powerlaw_beta", argc, argv);
}
