// Ablation: optimal routing vs strictly-shortest-path (ECMP) routing.
//
// Reproduces the routing observation behind the paper's §8 methodology:
// on structured Clos topologies (fat-tree), every shortest path is
// equivalent and ECMP matches optimal routing; on random graphs, pinning
// flows to strictly shortest paths squanders capacity (1-hop pairs get a
// single path) — which is why Jellyfish-style designs route over
// k-shortest (including non-minimal) paths via MPTCP.
#include "bench_common.h"

#include "topo/fat_tree.h"

namespace topo {
namespace {

using bench::BenchConfig;

struct RoutingPoint {
  double optimal = 0.0;
  double ecmp = 0.0;
};

std::uint64_t topo_seed_for(const BenchConfig& config, std::uint64_t salt,
                            int run) {
  return Rng::derive_seed(Rng::derive_seed(config.seed, salt),
                          2 * static_cast<std::uint64_t>(run));
}

std::uint64_t traffic_seed_for(const BenchConfig& config, std::uint64_t salt,
                               int run) {
  return Rng::derive_seed(Rng::derive_seed(config.seed, salt),
                          2 * static_cast<std::uint64_t>(run) + 1);
}

RoutingPoint compare(const BenchConfig& config, const TopologyBuilder& builder,
                     std::uint64_t salt) {
  RoutingPoint point;
  std::vector<double> optimal;
  std::vector<double> ecmp;
  for (int run = 0; run < config.runs; ++run) {
    const BuiltTopology t = builder(topo_seed_for(config, salt, run));
    const std::uint64_t traffic_seed = traffic_seed_for(config, salt, run);
    EvalOptions options = bench::eval_options(config);
    optimal.push_back(evaluate_throughput(t, options, traffic_seed).lambda);
    options.flow.restrict_to_shortest_paths = true;
    ecmp.push_back(evaluate_throughput(t, options, traffic_seed).lambda);
  }
  point.optimal = mean_of(optimal);
  point.ecmp = mean_of(ecmp);
  return point;
}

}  // namespace
}  // namespace topo

int main(int argc, char** argv) {
  using namespace topo;
  const bench::BenchConfig config =
      bench::parse_bench_config(argc, argv, /*quick_runs=*/3, /*full_runs=*/10);

  print_banner(std::cout,
               "Ablation: optimal vs strictly-shortest-path (ECMP) routing");
  TablePrinter table({"topology", "optimal", "ecmp", "ecmp_fraction"});

  {
    // The fat-tree is deterministic, so this point is one fixed topology
    // under several traffic draws — the batch-trials API evaluates the
    // draws concurrently (same seed derivation as the builder path).
    const BuiltTopology t = fat_tree_topology(8);  // 128 servers, non-blocking
    std::vector<std::uint64_t> traffic_seeds;
    for (int run = 0; run < config.runs; ++run) {
      traffic_seeds.push_back(traffic_seed_for(config, 101, run));
    }
    EvalOptions options = bench::eval_options(config);
    std::vector<double> optimal;
    for (const ThroughputResult& r :
         evaluate_throughput_trials(t, options, traffic_seeds)) {
      optimal.push_back(r.lambda);
    }
    options.flow.restrict_to_shortest_paths = true;
    std::vector<double> ecmp;
    for (const ThroughputResult& r :
         evaluate_throughput_trials(t, options, traffic_seeds)) {
      ecmp.push_back(r.lambda);
    }
    const RoutingPoint p{mean_of(optimal), mean_of(ecmp)};
    table.add_row({std::string("fat_tree_k8"), p.optimal, p.ecmp,
                   p.ecmp / p.optimal});
  }
  {
    const TopologyBuilder rrg = [](std::uint64_t seed) {
      return random_regular_topology(40, 15, 10, seed);  // 200 servers
    };
    const RoutingPoint p = compare(config, rrg, 102);
    table.add_row({std::string("rrg_40x10"), p.optimal, p.ecmp,
                   p.ecmp / p.optimal});
  }
  {
    const TopologyBuilder dense_rrg = [](std::uint64_t seed) {
      return random_regular_topology(40, 25, 20, seed);
    };
    const RoutingPoint p = compare(config, dense_rrg, 103);
    table.add_row({std::string("rrg_40x20"), p.optimal, p.ecmp,
                   p.ecmp / p.optimal});
  }
  table.emit(std::cout, config.csv);
  std::cout << "Expected: ecmp_fraction ~1 for the fat-tree, well below 1 "
               "for random graphs (ECMP pins 1-hop pairs to single links; "
               "k-shortest/MPTCP routing is required there).\n";
  return 0;
}
