// Thin launcher for the fig10_bound_vs_observed scenario (the experiment itself lives in
// src/scenario/figures/fig10_bound_vs_observed.cc; `topobench fig10_bound_vs_observed`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig10_bound_vs_observed", argc, argv);
}
