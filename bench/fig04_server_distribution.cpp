// Thin launcher for the fig04_server_distribution scenario (the experiment itself lives in
// src/scenario/figures/fig04_server_distribution.cc; `topobench fig04_server_distribution`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig04_server_distribution", argc, argv);
}
