// Thin launcher for the fig07_combined scenario (the experiment itself lives in
// src/scenario/figures/fig07_combined.cc; `topobench fig07_combined`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig07_combined", argc, argv);
}
