// Ablation: the cable-length / throughput trade-off (§6.2's application),
// plus two of the paper's analysis claims in one table:
//   * bisection (cluster-cut) capacity falls LINEARLY as cross-cluster
//     wiring shrinks, while throughput stays flat until the C-bar*
//     threshold — "bisection bandwidth is not a good measure";
//   * the spectral gap (expander quality) mirrors the throughput plateau.
#include "bench_common.h"

#include "graph/maxflow.h"
#include "graph/spectral.h"
#include "topo/layout.h"

int main(int argc, char** argv) {
  using namespace topo;
  const bench::BenchConfig config =
      bench::parse_bench_config(argc, argv, /*quick_runs=*/3, /*full_runs=*/10);

  TwoTypeSpec spec;
  spec.num_large = 16;
  spec.num_small = 16;
  spec.large_ports = 16;
  spec.small_ports = 16;
  spec.servers_per_large = 6;
  spec.servers_per_small = 6;

  print_banner(std::cout,
               "Ablation: cable locality vs throughput vs bisection vs "
               "spectral gap (two 16-switch zones)");
  TablePrinter table({"x_cross", "throughput", "mean_cable", "cluster_cut",
                      "spectral_gap"});
  const FloorLayout layout = two_zone_layout(16, 16, 8);
  for (double x : {0.1, 0.2, 0.35, 0.5, 0.7, 1.0, 1.3}) {
    spec.cross_fraction = x;
    std::vector<double> lambdas;
    std::vector<double> cables;
    std::vector<double> cuts;
    std::vector<double> gaps;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          Rng::derive_seed(config.seed, static_cast<int>(x * 100) * 31 + run);
      const BuiltTopology t = build_two_type(spec, seed);
      lambdas.push_back(
          evaluate_throughput(t, bench::eval_options(config), seed + 1)
              .lambda);
      cables.push_back(cable_stats(t.graph, layout).mean_length);
      std::vector<char> in_a(static_cast<std::size_t>(t.graph.num_nodes()), 0);
      for (int i = 0; i < 16; ++i) in_a[static_cast<std::size_t>(i)] = 1;
      cuts.push_back(cut_capacity(t.graph, in_a));
      gaps.push_back(adjacency_spectrum(t.graph, seed + 2, 400).gap);
    }
    table.add_row({x, mean_of(lambdas), mean_of(cables), mean_of(cuts),
                   mean_of(gaps)});
  }
  table.emit(std::cout, config.csv);
  std::cout << "Expected: cluster_cut falls linearly with x while "
               "throughput plateaus until ~x*=0.3-0.5; mean cable length "
               "shrinks with locality — wire locally for free until the "
               "threshold.\n";
  return 0;
}
