// Thin launcher for the fig03_aspl_steps scenario (the experiment itself lives in
// src/scenario/figures/fig03_aspl_steps.cc; `topobench fig03_aspl_steps`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig03_aspl_steps", argc, argv);
}
