// Ablation: how many MPTCP subflows does the packet simulation need?
//
// Jellyfish and this paper both use 8 subflows over shortest paths. This
// bench sweeps the subflow count on a random regular topology and reports
// mean/min normalized goodput, plus the EWTCP-coupling on/off comparison.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace topo;
  const bench::BenchConfig config =
      bench::parse_bench_config(argc, argv, /*quick_runs=*/1, /*full_runs=*/3);

  const int n = config.full ? 32 : 16;
  const int degree = 8;
  const int servers = 4;

  print_banner(std::cout,
               "Ablation: MPTCP subflow count on RRG(" + std::to_string(n) +
                   " switches, degree 8, 4 servers/switch)");
  TablePrinter table({"subflows", "coupling", "mean_norm", "min_norm",
                      "drops"});
  for (int subflows : {1, 2, 4, 8}) {
    for (bool coupled : {true, false}) {
      std::vector<double> means;
      std::vector<double> mins;
      double drops = 0.0;
      for (int run = 0; run < config.runs; ++run) {
        const std::uint64_t seed =
            Rng::derive_seed(config.seed, subflows * 10 + run);
        const BuiltTopology t =
            random_regular_topology(n, degree + servers, degree, seed);
        sim::SimParams params;
        params.subflows = subflows;
        params.ewtcp_coupling = coupled;
        params.duration_ns = 24'000'000;
        params.warmup_ns = 12'000'000;
        sim::SimNetwork net(t, params, seed + 1);
        net.add_permutation_workload();
        const sim::SimulationResult result = net.run();
        means.push_back(result.mean_normalized);
        mins.push_back(result.min_normalized);
        drops += static_cast<double>(result.total_drops);
      }
      table.add_row({static_cast<long long>(subflows),
                     std::string(coupled ? "ewtcp" : "uncoupled"),
                     mean_of(means), mean_of(mins), drops / config.runs});
    }
  }
  table.emit(std::cout, config.csv);
  std::cout << "Expected: throughput rises with subflow count and "
               "saturates around 8 (diminishing returns past 4).\n";
  return 0;
}
