// Thin launcher for the fig08_linespeeds scenario (the experiment itself lives in
// src/scenario/figures/fig08_linespeeds.cc; `topobench fig08_linespeeds`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig08_linespeeds", argc, argv);
}
