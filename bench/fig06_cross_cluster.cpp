// Thin launcher for the fig06_cross_cluster scenario (the experiment itself lives in
// src/scenario/figures/fig06_cross_cluster.cc; `topobench fig06_cross_cluster`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig06_cross_cluster", argc, argv);
}
