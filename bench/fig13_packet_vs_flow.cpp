// Thin launcher for the fig13_packet_vs_flow scenario (the experiment itself lives in
// src/scenario/figures/fig13_packet_vs_flow.cc; `topobench fig13_packet_vs_flow`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig13_packet_vs_flow", argc, argv);
}
