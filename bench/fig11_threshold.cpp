// Thin launcher for the fig11_threshold scenario (the experiment itself lives in
// src/scenario/figures/fig11_threshold.cc; `topobench fig11_threshold`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig11_threshold", argc, argv);
}
