// Thin launcher for the fig12_vl2 scenario (the experiment itself lives in
// src/scenario/figures/fig12_vl2.cc; `topobench fig12_vl2`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig12_vl2", argc, argv);
}
