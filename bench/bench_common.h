// Shared plumbing for the figure-reproduction benches.
//
// Every bench accepts:
//   --runs N   seeds per data point (default: quick value per bench)
//   --eps X    FPTAS certified-gap target (default 0.08)
//   --seed N   master seed (default 1)
//   --csv      machine-readable output
//   --full     paper-fidelity mode: more runs, finer sweeps
//
// Output convention: a banner naming the figure, then one aligned table
// whose columns mirror the paper's series.
#ifndef TOPODESIGN_BENCH_BENCH_COMMON_H
#define TOPODESIGN_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cmath>
#include <iostream>
#include <string>

#include "core/topobench.h"
#include "util/json.h"

namespace topo::bench {

/// Common bench configuration resolved from flags.
struct BenchConfig {
  int runs = 3;
  double epsilon = 0.08;
  std::uint64_t seed = 1;
  bool csv = false;
  bool full = false;
};

inline BenchConfig parse_bench_config(int argc, const char* const* argv,
                                      int quick_runs = 3,
                                      int full_runs = 20) {
  const Flags flags = bench_flags(argc, argv);
  BenchConfig config;
  config.full = flags.get_bool("full");
  config.runs = flags.get_int("runs", config.full ? full_runs : quick_runs);
  config.epsilon = flags.get_double("eps", 0.08);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.csv = flags.get_bool("csv");
  return config;
}

inline EvalOptions eval_options(const BenchConfig& config,
                                TrafficKind traffic = TrafficKind::kPermutation,
                                double chunky_fraction = 1.0) {
  EvalOptions options;
  options.flow.epsilon = config.epsilon;
  options.traffic = traffic;
  options.chunky_fraction = chunky_fraction;
  return options;
}

/// Monotonic wall-clock timer for the perf benches.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  /// Milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// JSON scalar formatting for the machine-readable BENCH_*.json files now
// lives in util/json.h; re-exported here for the bench binaries.
using topo::json_number;
using topo::json_string;

}  // namespace topo::bench

#endif  // TOPODESIGN_BENCH_BENCH_COMMON_H
