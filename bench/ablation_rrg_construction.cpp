// Ablation: does forcing simple graphs (swap repair) change RRG quality?
//
// The RRG builder repairs the raw configuration model into a simple,
// connected graph via degree-preserving swaps. This bench compares the
// repaired graphs against raw multigraph realizations on ASPL and
// throughput, and reports how often raw pairing needs repair at all.
#include "bench_common.h"

namespace topo {
namespace {

BuiltTopology with_servers(Graph graph, int servers_per_switch) {
  BuiltTopology t;
  const int n = graph.num_nodes();
  t.graph = std::move(graph);
  t.servers.per_switch.assign(static_cast<std::size_t>(n), servers_per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

}  // namespace
}  // namespace topo

int main(int argc, char** argv) {
  using namespace topo;
  const bench::BenchConfig config =
      bench::parse_bench_config(argc, argv, /*quick_runs=*/5, /*full_runs=*/20);

  print_banner(std::cout,
               "Ablation: simple-graph repair vs raw multigraph pairing "
               "(N=40, 5 servers/switch, permutation traffic)");
  TablePrinter table({"degree", "aspl_simple", "aspl_multi", "lambda_simple",
                      "lambda_multi", "multi_parallel_edges"});

  for (int r : {5, 10, 15}) {
    std::vector<double> aspl_simple;
    std::vector<double> aspl_multi;
    std::vector<double> lambda_simple;
    std::vector<double> lambda_multi;
    double parallel_edges = 0.0;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed = Rng::derive_seed(config.seed, r * 100 + run);
      const std::vector<int> degrees(40, r);

      DegreeSequenceOptions simple_opts;  // default: simple + connected
      const Graph simple =
          random_graph_with_degrees(degrees, seed, simple_opts);
      DegreeSequenceOptions multi_opts;
      multi_opts.simple = false;
      multi_opts.ensure_connected = true;
      const Graph multi = random_graph_with_degrees(degrees, seed, multi_opts);

      aspl_simple.push_back(average_shortest_path_length(simple));
      aspl_multi.push_back(average_shortest_path_length(multi));
      int duplicates = 0;
      for (EdgeId e = 0; e < multi.num_edges(); ++e) {
        if (multi.edge_multiplicity(multi.edge(e).u, multi.edge(e).v) > 1) {
          ++duplicates;
        }
      }
      parallel_edges += duplicates / 2.0;  // each pair counted twice-ish

      const EvalOptions options = bench::eval_options(config);
      lambda_simple.push_back(
          evaluate_throughput(with_servers(simple, 5), options, seed + 1)
              .lambda);
      lambda_multi.push_back(
          evaluate_throughput(with_servers(multi, 5), options, seed + 1)
              .lambda);
    }
    table.add_row({static_cast<long long>(r), mean_of(aspl_simple),
                   mean_of(aspl_multi), mean_of(lambda_simple),
                   mean_of(lambda_multi), parallel_edges / config.runs});
  }
  table.emit(std::cout, config.csv);
  std::cout << "Expected: simple repair never hurts (equal or slightly "
               "better ASPL/throughput); raw pairing wastes a few ports on "
               "parallel edges.\n";
  return 0;
}
