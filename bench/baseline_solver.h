// Pre-rewrite (seed) concurrent-flow solver, kept verbatim as the
// measurement baseline for perf_microbench: binary-heap Dijkstra with
// per-call allocation, vector-of-vectors adjacency, and std::map source
// groups. Only the bench links this; the library proper uses the CSR +
// pooled-workspace solver in src/flow/concurrent_flow.cc. The microbench
// asserts the two agree on lambda/dual_bound to 1e-9 on fixed seeds and
// reports the speedup ratio in BENCH_solver.json.
#ifndef TOPODESIGN_BENCH_BASELINE_SOLVER_H
#define TOPODESIGN_BENCH_BASELINE_SOLVER_H

#include <vector>

#include "flow/concurrent_flow.h"
#include "graph/graph.h"
#include "traffic/traffic.h"

namespace topo::bench {

/// The seed implementation of max_concurrent_flow, bit-for-bit.
[[nodiscard]] ThroughputResult max_concurrent_flow_baseline(
    const Graph& graph, const std::vector<Commodity>& commodities,
    const FlowOptions& options = {});

}  // namespace topo::bench

#endif  // TOPODESIGN_BENCH_BASELINE_SOLVER_H
