// Thin launcher for the fig02_homogeneous_size scenario (the experiment itself lives in
// src/scenario/figures/fig02_homogeneous_size.cc; `topobench fig02_homogeneous_size`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig02_homogeneous_size", argc, argv);
}
