// Packet-simulator microbenchmark and perf-regression tracker.
//
// Times the library's packet simulator against the frozen seed
// implementation kept in baseline_sim.cc on fig13-class rewired-VL2
// instances, and emits a machine-readable BENCH_sim.json so the perf
// trajectory is tracked PR over PR. Both simulators are driven with the
// identical topology, permutation flow list, seed, and sampled-path
// routing, so they reproduce the same transport dynamics: the bench
// asserts the mean goodputs agree to 1e-9 on every instance (the rewrite
// changed the data layout and timer discipline, not the arithmetic) and
// exits non-zero on mismatch so CI catches drift. The headline metric is
// events/sec — note the fast path also processes FEWER events for the
// same simulated traffic (no dead timer events), so the wall-clock ratio
// is higher than the events/sec ratio suggests; both are reported.
//
// Flags:
//   --smoke       CI mode: the small instance only, single repetition
//   --repeat N    timing repetitions per instance (default 2; min is kept)
//   --json PATH   output path (default BENCH_sim.json)
//   --seed N      master seed (default 1)
//   --no-baseline skip the baseline timing/equivalence pass
#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baseline_sim.h"
#include "bench_common.h"

namespace topo::bench {
namespace {

struct Instance {
  std::string name;
  BuiltTopology topology;
  std::vector<ServerFlow> flows;
  sim::SimParams params;
};

// fig13-class instances: oversubscribed rewired VL2 exactly as the figure
// builds them (ToR count 160% of nominal, 20 servers per ToR, 8-subflow
// MPTCP, queue 50). Durations are trimmed so one timing run stays in
// seconds; events/sec is duration-invariant once past warmup.
std::vector<Instance> make_instances(bool smoke, std::uint64_t seed) {
  std::vector<Instance> instances;
  const auto add_vl2 = [&](int da, int di, sim::SimTime duration_ns) {
    Instance inst;
    inst.name = "rewired_vl2_da" + std::to_string(da) + "_di" +
                std::to_string(di);
    Vl2Params params;
    params.d_a = da;
    params.d_i = di;
    params.servers_per_tor = 20;
    const int tors = std::min(rewired_vl2_max_tors(params),
                              std::max(2, vl2_nominal_tors(params) * 160 / 100));
    inst.topology = rewired_vl2_topology(params, tors, seed + 7);
    inst.params.subflows = 8;
    inst.params.queue_packets = 50;
    inst.params.duration_ns = duration_ns;
    inst.params.warmup_ns = duration_ns / 2;

    // One shared permutation drawn up front so the fast and seed
    // simulators run the identical flow list.
    Rng traffic_rng(Rng::derive_seed(seed, 0x51310ULL + static_cast<std::uint64_t>(da)));
    inst.flows = random_permutation_traffic(inst.topology.servers, traffic_rng)
                     .flows;
    instances.push_back(std::move(inst));
  };

  // fig13 smoke's smallest point.
  add_vl2(6, 8, smoke ? 6'000'000 : 12'000'000);
  if (!smoke) {
    add_vl2(10, 12, 8'000'000);
    // fig13's full-size configuration (the figure's largest point).
    add_vl2(18, 12, 6'000'000);
  }
  return instances;
}

struct SideReport {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double mean_normalized = 0.0;
};

struct InstanceReport {
  std::string name;
  int switches = 0;
  int edges = 0;
  int servers = 0;
  int flows = 0;
  SideReport fast;
  SideReport baseline;
  double speedup_wall = 0.0;
  double speedup_events_per_sec = 0.0;
  bool matches_baseline = true;
};

// One timed run per call; callers interleave fast/baseline repetitions so
// a burst of machine contention hits both sides of the ratio, not one.
void time_fast_once(const Instance& inst, std::uint64_t seed,
                    SideReport& report) {
  {
    sim::SimNetwork net(inst.topology, inst.params, seed);
    for (const ServerFlow& f : inst.flows) net.add_flow(f.src_server, f.dst_server);
    WallTimer timer;
    const sim::SimulationResult r = net.run();
    const double ms = timer.elapsed_ms();
    if (ms < report.wall_ms) {
      report.wall_ms = ms;
      report.events = r.events_processed;
      report.mean_normalized = r.mean_normalized;
    }
  }
}

void time_baseline_once(const Instance& inst, std::uint64_t seed,
                        SideReport& report) {
  seedsim::SeedSimNetwork::Params params;
  params.server_rate_gbps = inst.params.server_rate_gbps;
  params.link_delay_ns = inst.params.link_delay_ns;
  params.queue_packets = inst.params.queue_packets;
  params.packet_bytes = inst.params.packet_bytes;
  params.subflows = inst.params.subflows;
  params.duration_ns = inst.params.duration_ns;
  params.warmup_ns = inst.params.warmup_ns;
  params.start_jitter_ns = inst.params.start_jitter_ns;
  params.ewtcp_coupling = inst.params.ewtcp_coupling;
  {
    seedsim::SeedSimNetwork net(inst.topology, params, seed);
    for (const ServerFlow& f : inst.flows) net.add_flow(f.src_server, f.dst_server);
    WallTimer timer;
    const seedsim::SeedSimResult r = net.run();
    const double ms = timer.elapsed_ms();
    if (ms < report.wall_ms) {
      report.wall_ms = ms;
      report.events = r.events_processed;
      report.mean_normalized = r.mean_normalized;
    }
  }
}

void finish_side(SideReport& report) {
  report.events_per_sec =
      report.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(report.events) / report.wall_ms
          : 0.0;
}

double geomean_eps_speedup(const std::vector<InstanceReport>& reports) {
  double log_sum = 0.0;
  int count = 0;
  for (const InstanceReport& r : reports) {
    if (r.speedup_events_per_sec <= 0.0) continue;
    log_sum += std::log(r.speedup_events_per_sec);
    ++count;
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

std::string side_json(const SideReport& r, const std::string& indent) {
  std::string json = "{\n";
  json += indent + "  \"wall_ms\": " + json_number(r.wall_ms) + ",\n";
  json += indent + "  \"events\": " + std::to_string(r.events) + ",\n";
  json += indent +
          "  \"events_per_sec\": " + json_number(r.events_per_sec) + ",\n";
  json += indent +
          "  \"mean_normalized\": " + json_number(r.mean_normalized) + "\n";
  json += indent + "}";
  return json;
}

std::string to_json(const std::vector<InstanceReport>& reports, bool smoke,
                    bool with_baseline, double geomean) {
  std::string json = "{\n";
  json += "  \"bench\": \"sim\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"baseline_compared\": " +
          std::string(with_baseline ? "true" : "false") + ",\n";
  json += "  \"geomean_events_per_sec_speedup\": " + json_number(geomean) +
          ",\n";
  json += "  \"instances\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const InstanceReport& r = reports[i];
    json += "    {\n";
    json += "      \"name\": " + json_string(r.name) + ",\n";
    json += "      \"switches\": " + std::to_string(r.switches) + ",\n";
    json += "      \"edges\": " + std::to_string(r.edges) + ",\n";
    json += "      \"servers\": " + std::to_string(r.servers) + ",\n";
    json += "      \"flows\": " + std::to_string(r.flows) + ",\n";
    json += "      \"fast\": " + side_json(r.fast, "      ") + ",\n";
    json += "      \"baseline\": " + side_json(r.baseline, "      ") + ",\n";
    json += "      \"speedup_wall\": " + json_number(r.speedup_wall) + ",\n";
    json += "      \"speedup_events_per_sec\": " +
            json_number(r.speedup_events_per_sec) + ",\n";
    json += "      \"matches_baseline\": " +
            std::string(r.matches_baseline ? "true" : "false") + "\n";
    json += "    }";
    json += (i + 1 < reports.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

int run(int argc, const char* const* argv) {
  const Flags flags(argc, argv,
                    {"smoke", "repeat", "json", "seed", "no-baseline"});
  const bool smoke = flags.get_bool("smoke");
  const int repeat = flags.get_int("repeat", smoke ? 1 : 2);
  const std::string json_path = flags.get_string("json", "BENCH_sim.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool with_baseline = !flags.get_bool("no-baseline");

  std::cout << "sim_microbench: packet simulator vs seed baseline"
            << (smoke ? " (smoke)" : "") << "\n\n";

  std::vector<InstanceReport> reports;
  bool all_match = true;

  for (const Instance& inst : make_instances(smoke, seed)) {
    InstanceReport report;
    report.name = inst.name;
    report.switches = inst.topology.graph.num_nodes();
    report.edges = inst.topology.graph.num_edges();
    report.servers = inst.topology.servers.total();
    report.flows = static_cast<int>(inst.flows.size());

    report.fast.wall_ms = std::numeric_limits<double>::infinity();
    report.baseline.wall_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeat; ++rep) {
      time_fast_once(inst, seed + 11, report.fast);
      if (with_baseline) time_baseline_once(inst, seed + 11, report.baseline);
    }
    finish_side(report.fast);

    if (with_baseline) {
      finish_side(report.baseline);
      report.speedup_wall = report.fast.wall_ms > 0.0
                                ? report.baseline.wall_ms / report.fast.wall_ms
                                : 0.0;
      report.speedup_events_per_sec =
          report.fast.events_per_sec > 0.0
              ? report.fast.events_per_sec / report.baseline.events_per_sec
              : 0.0;
      const double scale = std::max(
          {1.0, report.fast.mean_normalized, report.baseline.mean_normalized});
      report.matches_baseline =
          std::abs(report.fast.mean_normalized -
                   report.baseline.mean_normalized) <= 1e-9 * scale;
      all_match = all_match && report.matches_baseline;
    }

    std::cout << report.name << " (" << report.servers << " servers, "
              << report.flows << " flows): fast " << report.fast.wall_ms
              << " ms / " << report.fast.events << " events ("
              << report.fast.events_per_sec / 1e6 << " M/s)";
    if (with_baseline) {
      std::cout << ", baseline " << report.baseline.wall_ms << " ms / "
                << report.baseline.events << " events ("
                << report.baseline.events_per_sec / 1e6 << " M/s), "
                << report.speedup_events_per_sec << "x events/sec, "
                << report.speedup_wall << "x wall"
                << (report.matches_baseline ? "" : "  [RESULT MISMATCH]");
    }
    std::cout << "\n";
    reports.push_back(report);
  }

  const double geomean = geomean_eps_speedup(reports);
  if (with_baseline) {
    std::cout << "\ngeomean events/sec speedup: " << geomean << "x\n";
  }

  std::ofstream out(json_path);
  out << to_json(reports, smoke, with_baseline, geomean);
  out.close();
  if (!out) {
    std::cerr << "FAIL: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_match) {
    std::cerr << "FAIL: simulator results diverged from the seed baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace topo::bench

int main(int argc, char** argv) {
  try {
    return topo::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
