// Ablation: incremental expansion vs building from scratch.
//
// The Jellyfish premise the paper builds on (§2): random graphs grow by
// splicing new switches into existing links. This bench grows an RRG in
// steps and compares throughput and ASPL against a from-scratch random
// graph of the same size — the two should match closely.
#include "bench_common.h"

#include "graph/algorithms.h"
#include "topo/expansion.h"

int main(int argc, char** argv) {
  using namespace topo;
  const bench::BenchConfig config =
      bench::parse_bench_config(argc, argv, /*quick_runs=*/3, /*full_runs=*/10);

  const int start_switches = 20;
  const int degree = 8;
  const int servers = 4;

  print_banner(std::cout,
               "Ablation: incremental expansion vs from-scratch RRG "
               "(start 20 switches, degree 8, 4 servers/switch)");
  TablePrinter table({"switches", "lambda_grown", "lambda_fresh",
                      "aspl_grown", "aspl_fresh"});
  for (int grow_to : {20, 28, 36, 52}) {
    std::vector<double> lambda_grown;
    std::vector<double> lambda_fresh;
    std::vector<double> aspl_grown;
    std::vector<double> aspl_fresh;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          Rng::derive_seed(config.seed, grow_to * 100 + run);
      BuiltTopology grown = random_regular_topology(
          start_switches, degree + servers, degree, seed);
      expand_topology(grown, grow_to - start_switches, degree, servers,
                      seed + 1);
      const BuiltTopology fresh = random_regular_topology(
          grow_to, degree + servers, degree, seed + 2);

      const EvalOptions options = bench::eval_options(config);
      lambda_grown.push_back(
          evaluate_throughput(grown, options, seed + 3).lambda);
      lambda_fresh.push_back(
          evaluate_throughput(fresh, options, seed + 3).lambda);
      aspl_grown.push_back(average_shortest_path_length(grown.graph));
      aspl_fresh.push_back(average_shortest_path_length(fresh.graph));
    }
    table.add_row({static_cast<long long>(grow_to), mean_of(lambda_grown),
                   mean_of(lambda_fresh), mean_of(aspl_grown),
                   mean_of(aspl_fresh)});
  }
  table.emit(std::cout, config.csv);
  std::cout << "Expected: grown and fresh columns match within a few "
               "percent at every size.\n";
  return 0;
}
