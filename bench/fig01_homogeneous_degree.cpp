// Thin launcher for the fig01_homogeneous_degree scenario (the experiment itself lives in
// src/scenario/figures/fig01_homogeneous_degree.cc; `topobench fig01_homogeneous_degree`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig01_homogeneous_degree", argc, argv);
}
