// Thin launcher for the fig09_decomposition scenario (the experiment itself lives in
// src/scenario/figures/fig09_decomposition.cc; `topobench fig09_decomposition`
// runs the same code). Kept so the historical per-figure binaries and
// their flags keep working.
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  return topo::scenario::scenario_main("fig09_decomposition", argc, argv);
}
