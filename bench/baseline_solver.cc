#include "baseline_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "graph/algorithms.h"
#include "util/error.h"

namespace topo::bench {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Directed-arc view of the undirected graph: arc 2e is u->v, 2e+1 is v->u.
struct ArcGraph {
  explicit ArcGraph(const Graph& g)
      : num_nodes(g.num_nodes()), num_arcs(2 * g.num_edges()) {
    capacity.resize(static_cast<std::size_t>(num_arcs));
    head.resize(static_cast<std::size_t>(num_arcs));
    out_arcs.resize(static_cast<std::size_t>(num_nodes));
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      capacity[static_cast<std::size_t>(2 * e)] = edge.capacity;
      capacity[static_cast<std::size_t>(2 * e + 1)] = edge.capacity;
      head[static_cast<std::size_t>(2 * e)] = edge.v;
      head[static_cast<std::size_t>(2 * e + 1)] = edge.u;
      out_arcs[static_cast<std::size_t>(edge.u)].push_back(2 * e);
      out_arcs[static_cast<std::size_t>(edge.v)].push_back(2 * e + 1);
    }
  }

  int num_nodes;
  int num_arcs;
  std::vector<double> capacity;
  std::vector<NodeId> head;
  std::vector<std::vector<int>> out_arcs;
};

// Shortest-path tree under the current arc lengths.
struct SpTree {
  std::vector<double> dist;
  std::vector<int> parent_arc;  // arc entering each node; -1 at the root
};

SpTree dijkstra(const ArcGraph& arcs, const std::vector<double>& length,
                NodeId src, const std::vector<int>* dag_hops = nullptr) {
  SpTree tree;
  tree.dist.assign(static_cast<std::size_t>(arcs.num_nodes), kInf);
  tree.parent_arc.assign(static_cast<std::size_t>(arcs.num_nodes), -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  tree.dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;
    for (int a : arcs.out_arcs[static_cast<std::size_t>(u)]) {
      const NodeId v = arcs.head[static_cast<std::size_t>(a)];
      if (dag_hops != nullptr &&
          (*dag_hops)[static_cast<std::size_t>(v)] !=
              (*dag_hops)[static_cast<std::size_t>(u)] + 1) {
        continue;  // not on a hop-shortest path from the source
      }
      const double nd = d + length[static_cast<std::size_t>(a)];
      if (nd < tree.dist[static_cast<std::size_t>(v)]) {
        tree.dist[static_cast<std::size_t>(v)] = nd;
        tree.parent_arc[static_cast<std::size_t>(v)] = a;
        heap.emplace(nd, v);
      }
    }
  }
  return tree;
}

bool tree_path(const ArcGraph& arcs, const SpTree& tree, NodeId src,
               NodeId dst, std::vector<int>& path) {
  path.clear();
  if (tree.dist[static_cast<std::size_t>(dst)] == kInf) return false;
  NodeId node = dst;
  while (node != src) {
    const int a = tree.parent_arc[static_cast<std::size_t>(node)];
    if (a < 0) return false;
    path.push_back(a);
    node = arcs.head[static_cast<std::size_t>(a ^ 1)];
    if (static_cast<int>(path.size()) > arcs.num_nodes) return false;
  }
  return true;
}

struct SourceGroup {
  NodeId src = 0;
  std::vector<std::pair<NodeId, double>> demands;  // (dst, demand)
};

}  // namespace

ThroughputResult max_concurrent_flow_baseline(
    const Graph& graph, const std::vector<Commodity>& commodities,
    const FlowOptions& options) {
  require(!commodities.empty(), "max_concurrent_flow requires commodities");
  require(options.epsilon > 0.0 && options.epsilon < 1.0,
          "epsilon must lie in (0, 1)");
  require(options.max_phases >= 1, "max_phases must be >= 1");

  ThroughputResult result;
  result.arc_flow.assign(static_cast<std::size_t>(2 * graph.num_edges()), 0.0);

  double total_demand = 0.0;
  std::map<NodeId, SourceGroup> by_source;
  for (const Commodity& c : commodities) {
    require(c.src >= 0 && c.src < graph.num_nodes() && c.dst >= 0 &&
                c.dst < graph.num_nodes(),
            "commodity endpoint out of range");
    require(c.src != c.dst, "commodity endpoints must differ");
    require(c.demand > 0.0, "commodity demand must be positive");
    auto& group = by_source[c.src];
    group.src = c.src;
    group.demands.emplace_back(c.dst, c.demand);
    total_demand += c.demand;
  }
  result.total_demand = total_demand;

  if (graph.num_edges() == 0) return result;  // no network: infeasible
  const ArcGraph arcs(graph);

  std::map<NodeId, std::vector<int>> hops_from_source;
  for (const auto& [src, group] : by_source) {
    auto dist = bfs_distances(graph, src);
    for (const auto& [dst, demand] : group.demands) {
      if (dist[static_cast<std::size_t>(dst)] < 0) return result;
    }
    if (options.restrict_to_shortest_paths) {
      hops_from_source.emplace(src, std::move(dist));
    }
  }
  const auto dag_for = [&](NodeId src) -> const std::vector<int>* {
    if (!options.restrict_to_shortest_paths) return nullptr;
    return &hops_from_source.at(src);
  };

  {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    std::vector<double> weights;
    for (const Commodity& c : commodities) {
      pairs.emplace_back(c.src, c.dst);
      weights.push_back(c.demand);
    }
    result.demand_weighted_spl = mean_pair_distance(graph, pairs, &weights);
  }

  std::vector<double> length(static_cast<std::size_t>(arcs.num_arcs));
  for (int a = 0; a < arcs.num_arcs; ++a) {
    length[static_cast<std::size_t>(a)] =
        1.0 / arcs.capacity[static_cast<std::size_t>(a)];
  }
  const double step = options.epsilon / 2.0;  // length-update granularity
  const double stale_factor = 1.5;  // tree reuse tolerance

  auto rescale_if_needed = [&]() {
    const double max_len = *std::max_element(length.begin(), length.end());
    if (max_len > 1e200) {
      for (double& l : length) l *= 1e-150;
    }
  };

  double best_dual = kInf;
  double last_primal = 0.0;
  double best_gap = 1.0;
  int phases_since_improvement = 0;
  std::vector<int> path;

  int phase = 0;
  for (; phase < options.max_phases; ++phase) {
    for (auto& [src, group] : by_source) {
      SpTree tree = dijkstra(arcs, length, src, dag_for(src));
      for (const auto& [dst, demand] : group.demands) {
        double remaining = demand;
        const double tol = 1e-12 * demand;
        while (remaining > tol) {
          if (!tree_path(arcs, tree, src, dst, path)) {
            return result;  // should not happen after the pre-check
          }
          double current_len = 0.0;
          double bottleneck = kInf;
          for (int a : path) {
            current_len += length[static_cast<std::size_t>(a)];
            bottleneck =
                std::min(bottleneck, arcs.capacity[static_cast<std::size_t>(a)]);
          }
          if (current_len >
              stale_factor * tree.dist[static_cast<std::size_t>(dst)]) {
            tree = dijkstra(arcs, length, src, dag_for(src));
            continue;
          }
          const double pushed = std::min(remaining, bottleneck);
          for (int a : path) {
            result.arc_flow[static_cast<std::size_t>(a)] += pushed;
            length[static_cast<std::size_t>(a)] *=
                1.0 + step * pushed / arcs.capacity[static_cast<std::size_t>(a)];
          }
          remaining -= pushed;
        }
      }
      rescale_if_needed();
    }

    double congestion = 0.0;
    for (int a = 0; a < arcs.num_arcs; ++a) {
      congestion = std::max(congestion,
                            result.arc_flow[static_cast<std::size_t>(a)] /
                                arcs.capacity[static_cast<std::size_t>(a)]);
    }
    last_primal =
        congestion > 0.0 ? static_cast<double>(phase + 1) / congestion : 0.0;

    if (phase % options.dual_every == 0 || phase + 1 == options.max_phases) {
      double d_l = 0.0;
      for (int a = 0; a < arcs.num_arcs; ++a) {
        d_l += length[static_cast<std::size_t>(a)] *
               arcs.capacity[static_cast<std::size_t>(a)];
      }
      double alpha = 0.0;
      for (const auto& [src, group] : by_source) {
        const SpTree tree = dijkstra(arcs, length, src, dag_for(src));
        for (const auto& [dst, demand] : group.demands) {
          alpha += demand * tree.dist[static_cast<std::size_t>(dst)];
        }
      }
      if (alpha > 0.0) best_dual = std::min(best_dual, d_l / alpha);
    }

    const double gap =
        best_dual > 0.0 && best_dual < kInf ? 1.0 - last_primal / best_dual : 1.0;
    if (gap < best_gap - 1e-6) {
      best_gap = gap;
      phases_since_improvement = 0;
    } else {
      ++phases_since_improvement;
    }
    if (gap <= options.epsilon) {
      ++phase;
      break;
    }
    if (phases_since_improvement >= options.stagnation_phases) {
      ++phase;
      break;
    }
  }

  result.phases = phase;
  result.feasible = true;
  double congestion = 0.0;
  for (int a = 0; a < arcs.num_arcs; ++a) {
    congestion = std::max(congestion,
                          result.arc_flow[static_cast<std::size_t>(a)] /
                              arcs.capacity[static_cast<std::size_t>(a)]);
  }
  result.lambda =
      congestion > 0.0 ? static_cast<double>(result.phases) / congestion : 0.0;
  result.dual_bound = best_dual == kInf ? result.lambda : best_dual;
  result.gap = result.dual_bound > 0.0
                   ? std::max(0.0, 1.0 - result.lambda / result.dual_bound)
                   : 0.0;
  if (congestion > 0.0) {
    const double scale =
        result.lambda / static_cast<double>(std::max(result.phases, 1));
    double total_flow_hops = 0.0;
    for (int a = 0; a < arcs.num_arcs; ++a) {
      result.arc_flow[static_cast<std::size_t>(a)] *= scale;
      total_flow_hops += result.arc_flow[static_cast<std::size_t>(a)];
    }
    const double delivered = result.lambda * total_demand;
    result.utilization = total_flow_hops / graph.total_directed_capacity();
    result.mean_routed_path_length =
        delivered > 0.0 ? total_flow_hops / delivered : 0.0;
    result.stretch = result.demand_weighted_spl > 0.0
                         ? result.mean_routed_path_length /
                               result.demand_weighted_spl
                         : 1.0;
  }
  return result;
}

}  // namespace topo::bench
