// Solver microbenchmark and perf-regression tracker.
//
// Times the library's concurrent-flow solver against the pre-rewrite
// (seed) implementation kept in baseline_solver.cc, over a few fixed
// instance classes, and emits a machine-readable BENCH_solver.json so the
// perf trajectory is tracked PR over PR. Also asserts on every instance
// that the rewritten solver reproduces the baseline's lambda/dual_bound to
// 1e-9 (the two implement the same arithmetic; only the data layout and
// scheduling changed), exiting non-zero on mismatch so CI catches drift.
//
// Flags:
//   --smoke       CI mode: small instances, single repetition
//   --repeat N    timing repetitions per instance (default 3; min is kept)
//   --json PATH   output path (default BENCH_solver.json)
//   --seed N      master seed for the instance generators (default 1)
//   --no-baseline skip the baseline timing/equivalence pass
#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baseline_solver.h"
#include "bench_common.h"

namespace topo::bench {
namespace {

struct Instance {
  std::string name;
  Graph graph{0};
  std::vector<Commodity> commodities;
  FlowOptions options;
  bool rrg = false;  // counts toward the RRG-class aggregate
};

std::vector<Commodity> shifted_permutation(int n, double demand) {
  std::vector<Commodity> commodities;
  for (int i = 0; i < n; ++i) commodities.push_back({i, (i + n / 2) % n, demand});
  return commodities;
}

// The RRG instances track the paper's two sweep axes: network size at
// fixed degree (Fig. 2) and degree at fixed size (Fig. 1). The large
// points cap max_phases so one timing run stays in seconds — a phase cap
// is a fair perf instance (both solvers do identical work per phase) even
// though lambda has not converged at the cap.
std::vector<Instance> make_instances(bool smoke, std::uint64_t seed) {
  std::vector<Instance> instances;

  const auto add_rrg = [&](int n, int degree, bool ecmp, int max_phases) {
    Instance inst;
    inst.name = "rrg_n" + std::to_string(n) + "_d" + std::to_string(degree) +
                (ecmp ? "_ecmp" : "_perm");
    inst.graph = random_regular_graph(n, degree, seed + 3);
    inst.commodities = shifted_permutation(n, 5.0);
    inst.options.epsilon = 0.08;
    inst.options.restrict_to_shortest_paths = ecmp;
    if (max_phases > 0) inst.options.max_phases = max_phases;
    inst.rrg = !ecmp;  // the ECMP variant is reported separately
    instances.push_back(std::move(inst));
  };

  add_rrg(40, 10, /*ecmp=*/false, 0);
  add_rrg(100, 10, /*ecmp=*/false, 0);
  if (!smoke) {
    // Size sweep at the paper's fixed degree...
    add_rrg(200, 10, /*ecmp=*/false, 400);
    add_rrg(500, 10, /*ecmp=*/false, 40);
    // ...and degree sweep at fixed size.
    add_rrg(200, 24, /*ecmp=*/false, 60);
    add_rrg(256, 32, /*ecmp=*/false, 40);
    add_rrg(100, 10, /*ecmp=*/true, 0);

    // Two-cluster instance: high-degree core plus a low-degree edge
    // cluster, permutation across everything — exercises skewed lengths.
    Instance clustered;
    clustered.name = "clustered_20x12_160x6";
    ClusterSpec spec;
    spec.degrees_a.assign(20, 12);
    spec.degrees_b.assign(160, 6);
    spec.cross_links = 60;
    clustered.graph = clustered_random_graph(spec, seed + 5).graph;
    clustered.commodities =
        shifted_permutation(clustered.graph.num_nodes(), 2.0);
    clustered.options.epsilon = 0.08;
    instances.push_back(std::move(clustered));
  }
  return instances;
}

template <typename Solve>
double min_wall_ms(int repeat, ThroughputResult& out, const Solve& solve) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeat; ++rep) {
    WallTimer timer;
    out = solve();
    best = std::min(best, timer.elapsed_ms());
  }
  return best;
}

struct InstanceReport {
  std::string name;
  int nodes = 0;
  int edges = 0;
  int commodities = 0;
  bool rrg = false;
  double fast_ms = 0.0;
  double baseline_ms = 0.0;
  double speedup = 0.0;
  double lambda = 0.0;
  double dual_bound = 0.0;
  double gap = 0.0;
  int phases = 0;
  bool matches_baseline = true;
};

double geomean_over(const std::vector<InstanceReport>& reports,
                    bool rrg_only) {
  double log_sum = 0.0;
  int count = 0;
  for (const InstanceReport& r : reports) {
    if (r.speedup <= 0.0 || (rrg_only && !r.rrg)) continue;
    log_sum += std::log(r.speedup);
    ++count;
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

std::string to_json(const std::vector<InstanceReport>& reports, bool smoke,
                    bool with_baseline, double geomean_speedup,
                    double rrg_class_speedup) {
  std::string json = "{\n";
  json += "  \"bench\": \"solver\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"threads\": " + std::to_string(parallel_slots()) + ",\n";
  json += "  \"baseline_compared\": " +
          std::string(with_baseline ? "true" : "false") + ",\n";
  json += "  \"geomean_speedup\": " + json_number(geomean_speedup) + ",\n";
  json += "  \"rrg_class_speedup\": " + json_number(rrg_class_speedup) + ",\n";
  json += "  \"instances\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const InstanceReport& r = reports[i];
    json += "    {\n";
    json += "      \"name\": " + json_string(r.name) + ",\n";
    json += "      \"nodes\": " + std::to_string(r.nodes) + ",\n";
    json += "      \"edges\": " + std::to_string(r.edges) + ",\n";
    json += "      \"commodities\": " + std::to_string(r.commodities) + ",\n";
    json += "      \"rrg_class\": " + std::string(r.rrg ? "true" : "false") +
            ",\n";
    json += "      \"fast_ms\": " + json_number(r.fast_ms) + ",\n";
    json += "      \"baseline_ms\": " + json_number(r.baseline_ms) + ",\n";
    json += "      \"speedup\": " + json_number(r.speedup) + ",\n";
    json += "      \"lambda\": " + json_number(r.lambda) + ",\n";
    json += "      \"dual_bound\": " + json_number(r.dual_bound) + ",\n";
    json += "      \"gap\": " + json_number(r.gap) + ",\n";
    json += "      \"phases\": " + std::to_string(r.phases) + ",\n";
    json += "      \"matches_baseline\": " +
            std::string(r.matches_baseline ? "true" : "false") + "\n";
    json += "    }";
    json += (i + 1 < reports.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

int run(int argc, const char* const* argv) {
  const Flags flags(argc, argv,
                    {"smoke", "repeat", "json", "seed", "no-baseline"});
  const bool smoke = flags.get_bool("smoke");
  const int repeat = flags.get_int("repeat", smoke ? 1 : 3);
  const std::string json_path = flags.get_string("json", "BENCH_solver.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool with_baseline = !flags.get_bool("no-baseline");

  std::cout << "perf_microbench: concurrent-flow solver vs seed baseline"
            << (smoke ? " (smoke)" : "") << "\n";
  std::cout << "threads: " << parallel_slots() << ", repeat: " << repeat
            << "\n\n";

  std::vector<InstanceReport> reports;
  bool all_match = true;

  for (Instance& inst : make_instances(smoke, seed)) {
    InstanceReport report;
    report.name = inst.name;
    report.nodes = inst.graph.num_nodes();
    report.edges = inst.graph.num_edges();
    report.commodities = static_cast<int>(inst.commodities.size());
    report.rrg = inst.rrg;

    ThroughputResult fast;
    report.fast_ms = min_wall_ms(repeat, fast, [&] {
      return max_concurrent_flow(inst.graph, inst.commodities, inst.options);
    });
    report.lambda = fast.lambda;
    report.dual_bound = fast.dual_bound;
    report.gap = fast.gap;
    report.phases = fast.phases;

    if (with_baseline) {
      ThroughputResult base;
      report.baseline_ms = min_wall_ms(repeat, base, [&] {
        return max_concurrent_flow_baseline(inst.graph, inst.commodities,
                                            inst.options);
      });
      report.speedup =
          report.fast_ms > 0.0 ? report.baseline_ms / report.fast_ms : 0.0;
      const double scale =
          std::max({1.0, std::abs(base.lambda), std::abs(base.dual_bound)});
      report.matches_baseline =
          std::abs(fast.lambda - base.lambda) <= 1e-9 * scale &&
          std::abs(fast.dual_bound - base.dual_bound) <= 1e-9 * scale;
      all_match = all_match && report.matches_baseline;
    }

    std::cout << report.name << ": fast " << report.fast_ms << " ms";
    if (with_baseline) {
      std::cout << ", baseline " << report.baseline_ms << " ms, speedup "
                << report.speedup << "x"
                << (report.matches_baseline ? "" : "  [RESULT MISMATCH]");
    }
    std::cout << " (lambda " << report.lambda << ", gap " << report.gap
              << ", phases " << report.phases << ")\n";
    reports.push_back(report);
  }

  const double geomean_speedup = geomean_over(reports, /*rrg_only=*/false);
  const double rrg_class_speedup = geomean_over(reports, /*rrg_only=*/true);
  if (with_baseline) {
    std::cout << "\ngeomean speedup: " << geomean_speedup
              << "x (RRG class: " << rrg_class_speedup << "x)\n";
  }

  std::ofstream out(json_path);
  out << to_json(reports, smoke, with_baseline, geomean_speedup,
                 rrg_class_speedup);
  out.close();
  if (!out) {
    std::cerr << "FAIL: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_match) {
    std::cerr << "FAIL: solver results diverged from the seed baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace topo::bench

int main(int argc, char** argv) {
  try {
    return topo::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
