// Google-benchmark microbenchmarks for the library's hot paths:
// topology generation, graph algorithms, both flow solvers, and the
// packet simulator's event loop.
#include <benchmark/benchmark.h>

#include "core/topobench.h"

namespace topo {
namespace {

void BM_RandomRegularGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_regular_graph(n, 10, seed++));
  }
}
BENCHMARK(BM_RandomRegularGraph)->Arg(40)->Arg(200)->Arg(1000);

void BM_ClusteredRandomGraph(benchmark::State& state) {
  ClusterSpec spec;
  spec.degrees_a.assign(20, 12);
  spec.degrees_b.assign(static_cast<std::size_t>(state.range(0)), 6);
  spec.cross_links = 60;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustered_random_graph(spec, seed++));
  }
}
BENCHMARK(BM_ClusteredRandomGraph)->Arg(40)->Arg(160);

void BM_AllPairsBfs(benchmark::State& state) {
  const Graph g =
      random_regular_graph(static_cast<int>(state.range(0)), 10, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_distances(g));
  }
}
BENCHMARK(BM_AllPairsBfs)->Arg(40)->Arg(200)->Arg(1000);

void BM_DinicMaxFlow(benchmark::State& state) {
  const Graph g =
      random_regular_graph(static_cast<int>(state.range(0)), 10, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_flow(g, 0, g.num_nodes() - 1));
  }
}
BENCHMARK(BM_DinicMaxFlow)->Arg(40)->Arg(200);

void BM_ConcurrentFlowFptas(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = random_regular_graph(n, 10, 3);
  std::vector<Commodity> commodities;
  for (int i = 0; i < n; ++i) commodities.push_back({i, (i + n / 2) % n, 5.0});
  FlowOptions options;
  options.epsilon = 0.08;
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_concurrent_flow(g, commodities, options));
  }
}
BENCHMARK(BM_ConcurrentFlowFptas)->Arg(40)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_ExactLpSmall(benchmark::State& state) {
  const Graph g = random_regular_graph(10, 3, 3);
  std::vector<Commodity> commodities;
  for (int i = 0; i < 5; ++i) commodities.push_back({i, (i + 5) % 10, 1.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_concurrent_flow_lp(g, commodities));
  }
}
BENCHMARK(BM_ExactLpSmall)->Unit(benchmark::kMillisecond);

void BM_PacketSimulation(benchmark::State& state) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 5);
  for (auto _ : state) {
    sim::SimParams params;
    params.subflows = 4;
    params.duration_ns = 4'000'000;
    params.warmup_ns = 2'000'000;
    sim::SimNetwork net(t, params, 3);
    net.add_permutation_workload();
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(BM_PacketSimulation)->Unit(benchmark::kMillisecond);

void BM_TrafficAggregation(benchmark::State& state) {
  ServerMap servers;
  servers.per_switch.assign(200, 10);
  Rng rng(4);
  const TrafficMatrix tm = random_permutation_traffic(servers, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregate_to_commodities(tm, servers));
  }
}
BENCHMARK(BM_TrafficAggregation);

}  // namespace
}  // namespace topo

BENCHMARK_MAIN();
