// Solver microbenchmark and perf-regression tracker.
//
// Times the library's concurrent-flow solver against the pre-rewrite
// (seed) implementation kept in baseline_solver.cc, over a few fixed
// instance classes, and emits a machine-readable BENCH_solver.json so the
// perf trajectory is tracked PR over PR. Also asserts on every instance
// that the rewritten solver reproduces the baseline's lambda/dual_bound to
// 1e-9 (the two implement the same arithmetic; only the data layout and
// scheduling changed), exiting non-zero on mismatch so CI catches drift.
//
// Also times the approximate solver mode (SolverMode::kApprox: warm
// trees, batched-parallel routing, bucketed dual Dijkstras) against
// exact mode on every instance, asserting the approx lambda stays within
// the epsilon-scaled tolerance of the exact certificate whenever both
// runs converged. A multithread section re-runs the whole suite in child
// processes at other pool widths (the pool is sized once per process, so
// a different width needs a fresh process) and asserts both modes
// reproduce this process's lambdas bit for bit — exact because it is
// single-threaded arithmetic, approx because its batched rounds are
// deterministic for any thread count.
//
// Flags:
//   --smoke        CI mode: small instances, single repetition
//   --repeat N     timing repetitions per instance (default 3; min is kept)
//   --json PATH    output path (default BENCH_solver.json)
//   --seed N       master seed for the instance generators (default 1)
//   --no-baseline  skip the baseline timing/equivalence pass
//   --threads N    size the shared pool (before its first use)
//   --no-multicore skip the child-process multithread section
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline_solver.h"
#include "bench_common.h"
#include "util/subprocess.h"

namespace topo::bench {
namespace {

struct Instance {
  std::string name;
  Graph graph{0};
  std::vector<Commodity> commodities;
  FlowOptions options;
  bool rrg = false;  // counts toward the RRG-class aggregate
};

std::vector<Commodity> shifted_permutation(int n, double demand) {
  std::vector<Commodity> commodities;
  for (int i = 0; i < n; ++i) commodities.push_back({i, (i + n / 2) % n, demand});
  return commodities;
}

// The RRG instances track the paper's two sweep axes: network size at
// fixed degree (Fig. 2) and degree at fixed size (Fig. 1). The large
// points cap max_phases so one timing run stays in seconds — a phase cap
// is a fair perf instance (both solvers do identical work per phase) even
// though lambda has not converged at the cap.
std::vector<Instance> make_instances(bool smoke, std::uint64_t seed) {
  std::vector<Instance> instances;

  const auto add_rrg = [&](int n, int degree, bool ecmp, int max_phases) {
    Instance inst;
    inst.name = "rrg_n" + std::to_string(n) + "_d" + std::to_string(degree) +
                (ecmp ? "_ecmp" : "_perm");
    inst.graph = random_regular_graph(n, degree, seed + 3);
    inst.commodities = shifted_permutation(n, 5.0);
    inst.options.epsilon = 0.08;
    inst.options.restrict_to_shortest_paths = ecmp;
    if (max_phases > 0) inst.options.max_phases = max_phases;
    inst.rrg = !ecmp;  // the ECMP variant is reported separately
    instances.push_back(std::move(inst));
  };

  add_rrg(40, 10, /*ecmp=*/false, 0);
  add_rrg(100, 10, /*ecmp=*/false, 0);
  if (!smoke) {
    // Size sweep at the paper's fixed degree...
    add_rrg(200, 10, /*ecmp=*/false, 400);
    add_rrg(500, 10, /*ecmp=*/false, 40);
    // ...and degree sweep at fixed size.
    add_rrg(200, 24, /*ecmp=*/false, 60);
    add_rrg(256, 32, /*ecmp=*/false, 40);
    add_rrg(100, 10, /*ecmp=*/true, 0);

    // Two-cluster instance: high-degree core plus a low-degree edge
    // cluster, permutation across everything — exercises skewed lengths.
    Instance clustered;
    clustered.name = "clustered_20x12_160x6";
    ClusterSpec spec;
    spec.degrees_a.assign(20, 12);
    spec.degrees_b.assign(160, 6);
    spec.cross_links = 60;
    clustered.graph = clustered_random_graph(spec, seed + 5).graph;
    clustered.commodities =
        shifted_permutation(clustered.graph.num_nodes(), 2.0);
    clustered.options.epsilon = 0.08;
    instances.push_back(std::move(clustered));
  }
  return instances;
}

template <typename Solve>
double min_wall_ms(int repeat, ThroughputResult& out, const Solve& solve) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeat; ++rep) {
    WallTimer timer;
    out = solve();
    best = std::min(best, timer.elapsed_ms());
  }
  return best;
}

struct InstanceReport {
  std::string name;
  int nodes = 0;
  int edges = 0;
  int commodities = 0;
  bool rrg = false;
  double fast_ms = 0.0;
  double baseline_ms = 0.0;
  double speedup = 0.0;
  double lambda = 0.0;
  double dual_bound = 0.0;
  double gap = 0.0;
  int phases = 0;
  bool matches_baseline = true;
  // Approximate-mode pass (same instance, SolverMode::kApprox).
  double approx_ms = 0.0;
  double approx_speedup = 0.0;  ///< exact fast_ms / approx_ms.
  double approx_lambda = 0.0;
  double approx_dual = 0.0;
  double approx_gap = 0.0;
  int approx_phases = 0;
  double approx_rel_err = 0.0;  ///< (approx - exact) / exact lambda.
  /// Tolerance asserted only when BOTH runs certified their gap — on
  /// phase-capped instances neither lambda is a converged estimate, so
  /// rel_err is recorded but not enforced.
  bool approx_checked = false;
  bool approx_within_tolerance = true;
};

double geomean_over(const std::vector<InstanceReport>& reports, bool rrg_only,
                    double InstanceReport::* numerator_ms = nullptr) {
  double log_sum = 0.0;
  int count = 0;
  for (const InstanceReport& r : reports) {
    const double speedup = numerator_ms == nullptr
                               ? r.speedup
                               : (r.approx_ms > 0.0 ? r.*numerator_ms / r.approx_ms
                                                    : 0.0);
    if (speedup <= 0.0 || (rrg_only && !r.rrg)) continue;
    log_sum += std::log(speedup);
    ++count;
  }
  return count > 0 ? std::exp(log_sum / count) : 0.0;
}

// One child process's re-run of the suite at a different pool width.
struct ThreadSectionInstance {
  std::string name;
  double fast_ms = 0.0;
  double approx_ms = 0.0;
  bool exact_bit_identical = true;
  bool approx_bit_identical = true;
};

struct ThreadSection {
  int threads = 0;
  bool ran = false;  ///< Child spawned, exited 0, and its JSON parsed.
  double approx_geomean_speedup = 0.0;  ///< At the child's thread count.
  std::vector<ThreadSectionInstance> instances;
};

std::string self_executable() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

std::string to_json(const std::vector<InstanceReport>& reports, bool smoke,
                    bool with_baseline, double geomean_speedup,
                    double rrg_class_speedup, double approx_geomean_speedup,
                    double rrg_class_approx_speedup,
                    const std::vector<ThreadSection>& sections) {
  std::string json = "{\n";
  json += "  \"bench\": \"solver\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"threads\": " + std::to_string(parallel_slots()) + ",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"baseline_compared\": " +
          std::string(with_baseline ? "true" : "false") + ",\n";
  json += "  \"geomean_speedup\": " + json_number(geomean_speedup) + ",\n";
  json += "  \"rrg_class_speedup\": " + json_number(rrg_class_speedup) + ",\n";
  json += "  \"approx_geomean_speedup\": " +
          json_number(approx_geomean_speedup) + ",\n";
  json += "  \"rrg_class_approx_speedup\": " +
          json_number(rrg_class_approx_speedup) + ",\n";
  json += "  \"instances\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const InstanceReport& r = reports[i];
    json += "    {\n";
    json += "      \"name\": " + json_string(r.name) + ",\n";
    json += "      \"nodes\": " + std::to_string(r.nodes) + ",\n";
    json += "      \"edges\": " + std::to_string(r.edges) + ",\n";
    json += "      \"commodities\": " + std::to_string(r.commodities) + ",\n";
    json += "      \"rrg_class\": " + std::string(r.rrg ? "true" : "false") +
            ",\n";
    json += "      \"fast_ms\": " + json_number(r.fast_ms) + ",\n";
    json += "      \"baseline_ms\": " + json_number(r.baseline_ms) + ",\n";
    json += "      \"speedup\": " + json_number(r.speedup) + ",\n";
    json += "      \"lambda\": " + json_number(r.lambda) + ",\n";
    json += "      \"dual_bound\": " + json_number(r.dual_bound) + ",\n";
    json += "      \"gap\": " + json_number(r.gap) + ",\n";
    json += "      \"phases\": " + std::to_string(r.phases) + ",\n";
    json += "      \"matches_baseline\": " +
            std::string(r.matches_baseline ? "true" : "false") + ",\n";
    json += "      \"approx_ms\": " + json_number(r.approx_ms) + ",\n";
    json += "      \"approx_speedup\": " + json_number(r.approx_speedup) +
            ",\n";
    json += "      \"approx_lambda\": " + json_number(r.approx_lambda) + ",\n";
    json += "      \"approx_dual_bound\": " + json_number(r.approx_dual) +
            ",\n";
    json += "      \"approx_gap\": " + json_number(r.approx_gap) + ",\n";
    json += "      \"approx_phases\": " + std::to_string(r.approx_phases) +
            ",\n";
    json += "      \"approx_rel_err\": " + json_number(r.approx_rel_err) +
            ",\n";
    json += "      \"approx_checked\": " +
            std::string(r.approx_checked ? "true" : "false") + ",\n";
    json += "      \"approx_within_tolerance\": " +
            std::string(r.approx_within_tolerance ? "true" : "false") + "\n";
    json += "    }";
    json += (i + 1 < reports.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"multithread\": [\n";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const ThreadSection& sec = sections[s];
    json += "    {\n";
    json += "      \"threads\": " + std::to_string(sec.threads) + ",\n";
    json += "      \"ran\": " + std::string(sec.ran ? "true" : "false") +
            ",\n";
    json += "      \"approx_geomean_speedup\": " +
            json_number(sec.approx_geomean_speedup) + ",\n";
    json += "      \"instances\": [\n";
    for (std::size_t i = 0; i < sec.instances.size(); ++i) {
      const ThreadSectionInstance& ti = sec.instances[i];
      json += "        {\"name\": " + json_string(ti.name) +
              ", \"fast_ms\": " + json_number(ti.fast_ms) +
              ", \"approx_ms\": " + json_number(ti.approx_ms) +
              ", \"exact_bit_identical\": " +
              (ti.exact_bit_identical ? "true" : "false") +
              ", \"approx_bit_identical\": " +
              (ti.approx_bit_identical ? "true" : "false") + "}";
      json += (i + 1 < sec.instances.size()) ? ",\n" : "\n";
    }
    json += "      ]\n";
    json += "    }";
    json += (s + 1 < sections.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

// Spawns this binary again at `threads` pool slots (the pool is sized
// once per process, so a different width needs a fresh process), parses
// the child's JSON, and checks both modes' lambdas against the parent's.
ThreadSection run_thread_section(const std::string& exe, int threads,
                                 bool smoke, int repeat, std::uint64_t seed,
                                 const std::string& json_path,
                                 const std::vector<InstanceReport>& parent) {
  ThreadSection section;
  section.threads = threads;
  const std::string child_json =
      json_path + ".threads" + std::to_string(threads);
  std::vector<std::string> argv = {
      exe,      "--json",   child_json,
      "--seed", std::to_string(seed),
      "--repeat", std::to_string(repeat),
      "--no-baseline", "--no-multicore"};
  if (smoke) argv.push_back("--smoke");
  SpawnOptions options;
  options.env = {{"TOPOBENCH_THREADS", std::to_string(threads)}};
  options.log_path = child_json + ".log";
  Subprocess child = Subprocess::spawn(argv, options);
  const Subprocess::Status status = child.wait();
  if (!status.ok()) {
    std::cerr << "warning: threads=" << threads << " child failed (see "
              << options.log_path << ")\n";
    return section;
  }
  std::ifstream in(child_json);
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    const JsonValue root = parse_json(buffer.str());
    const JsonValue& instances = root.at("instances");
    for (const JsonValue& item : instances.items) {
      ThreadSectionInstance ti;
      ti.name = item.at("name").text;
      ti.fast_ms = item.at("fast_ms").number;
      ti.approx_ms = item.at("approx_ms").number;
      for (const InstanceReport& p : parent) {
        if (p.name != ti.name) continue;
        // Bit-for-bit, not within-tolerance: exact mode is singlethreaded
        // arithmetic, and approx mode's batched rounds are deterministic
        // for ANY pool width by construction.
        ti.exact_bit_identical = item.at("lambda").number == p.lambda;
        ti.approx_bit_identical =
            item.at("approx_lambda").number == p.approx_lambda;
      }
      section.instances.push_back(std::move(ti));
    }
    const JsonValue& geo = root.at("approx_geomean_speedup");
    section.approx_geomean_speedup = geo.number;
    section.ran = true;
  } catch (const std::exception& e) {
    std::cerr << "warning: threads=" << threads
              << " child JSON unreadable: " << e.what() << "\n";
    section.instances.clear();
    return section;
  }
  std::remove(child_json.c_str());
  std::remove(options.log_path.c_str());
  return section;
}

int run(int argc, const char* const* argv) {
  const Flags flags(argc, argv,
                    {"smoke", "repeat", "json", "seed", "no-baseline",
                     "threads", "no-multicore"});
  const bool smoke = flags.get_bool("smoke");
  const int repeat = flags.get_int("repeat", smoke ? 1 : 3);
  const std::string json_path = flags.get_string("json", "BENCH_solver.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool with_baseline = !flags.get_bool("no-baseline");
  const bool with_multicore = !flags.get_bool("no-multicore");
  if (const int threads = flags.get_int("threads", 0); threads > 0) {
    // Exported so child processes (and anything else we spawn) inherit
    // the width; the local pool is sized explicitly, failing loudly if a
    // parallel region already ran.
    ::setenv("TOPOBENCH_THREADS", std::to_string(threads).c_str(), 1);
    if (!set_parallel_slots(threads)) {
      std::cerr << "FAIL: --threads cannot take effect, pool already "
                   "started with "
                << parallel_slots() << " slots\n";
      return 1;
    }
  }

  std::cout << "perf_microbench: concurrent-flow solver vs seed baseline"
            << (smoke ? " (smoke)" : "") << "\n";
  std::cout << "threads: " << parallel_slots() << ", repeat: " << repeat
            << "\n\n";

  std::vector<InstanceReport> reports;
  bool all_match = true;
  bool all_within_tolerance = true;

  for (Instance& inst : make_instances(smoke, seed)) {
    InstanceReport report;
    report.name = inst.name;
    report.nodes = inst.graph.num_nodes();
    report.edges = inst.graph.num_edges();
    report.commodities = static_cast<int>(inst.commodities.size());
    report.rrg = inst.rrg;

    ThroughputResult fast;
    report.fast_ms = min_wall_ms(repeat, fast, [&] {
      return max_concurrent_flow(inst.graph, inst.commodities, inst.options);
    });
    report.lambda = fast.lambda;
    report.dual_bound = fast.dual_bound;
    report.gap = fast.gap;
    report.phases = fast.phases;

    if (with_baseline) {
      ThroughputResult base;
      report.baseline_ms = min_wall_ms(repeat, base, [&] {
        return max_concurrent_flow_baseline(inst.graph, inst.commodities,
                                            inst.options);
      });
      report.speedup =
          report.fast_ms > 0.0 ? report.baseline_ms / report.fast_ms : 0.0;
      const double scale =
          std::max({1.0, std::abs(base.lambda), std::abs(base.dual_bound)});
      report.matches_baseline =
          std::abs(fast.lambda - base.lambda) <= 1e-9 * scale &&
          std::abs(fast.dual_bound - base.dual_bound) <= 1e-9 * scale;
      all_match = all_match && report.matches_baseline;
    }

    FlowOptions approx_options = inst.options;
    approx_options.mode = SolverMode::kApprox;
    ThroughputResult approx;
    report.approx_ms = min_wall_ms(repeat, approx, [&] {
      return max_concurrent_flow(inst.graph, inst.commodities, approx_options);
    });
    report.approx_speedup =
        report.approx_ms > 0.0 ? report.fast_ms / report.approx_ms : 0.0;
    report.approx_lambda = approx.lambda;
    report.approx_dual = approx.dual_bound;
    report.approx_gap = approx.gap;
    report.approx_phases = approx.phases;
    report.approx_rel_err =
        fast.lambda != 0.0 ? (approx.lambda - fast.lambda) / fast.lambda : 0.0;
    // Enforce the tolerance only when both runs certified their gap: a
    // phase-capped instance's lambda is wherever the cap landed, not a
    // converged estimate, so comparing the two proves nothing.
    const double eps = inst.options.epsilon;
    report.approx_checked = fast.gap <= eps && approx.gap <= eps;
    report.approx_within_tolerance =
        !report.approx_checked || std::abs(report.approx_rel_err) <= eps;
    all_within_tolerance =
        all_within_tolerance && report.approx_within_tolerance;

    std::cout << report.name << ": fast " << report.fast_ms << " ms";
    if (with_baseline) {
      std::cout << ", baseline " << report.baseline_ms << " ms, speedup "
                << report.speedup << "x"
                << (report.matches_baseline ? "" : "  [RESULT MISMATCH]");
    }
    std::cout << ", approx " << report.approx_ms << " ms ("
              << report.approx_speedup << "x, rel_err "
              << report.approx_rel_err
              << (report.approx_within_tolerance ? "" : "  [OUT OF TOLERANCE]")
              << ")";
    std::cout << " (lambda " << report.lambda << ", gap " << report.gap
              << ", phases " << report.phases << ")\n";
    reports.push_back(report);
  }

  const double geomean_speedup = geomean_over(reports, /*rrg_only=*/false);
  const double rrg_class_speedup = geomean_over(reports, /*rrg_only=*/true);
  const double approx_geomean =
      geomean_over(reports, /*rrg_only=*/false, &InstanceReport::fast_ms);
  const double rrg_approx_geomean =
      geomean_over(reports, /*rrg_only=*/true, &InstanceReport::fast_ms);
  if (with_baseline) {
    std::cout << "\ngeomean speedup: " << geomean_speedup
              << "x (RRG class: " << rrg_class_speedup << "x)\n";
  }
  std::cout << "approx-vs-exact geomean: " << approx_geomean
            << "x (RRG class: " << rrg_approx_geomean << "x)\n";

  // Multithread section: re-run the suite at other pool widths in child
  // processes and require both modes to reproduce this process's lambdas
  // bit for bit. Width 2 is the cheap CI point; the host's full core
  // count captures real scaling where the machine has one.
  std::vector<ThreadSection> sections;
  bool all_deterministic = true;
  if (with_multicore) {
    const std::string exe = self_executable();
    if (exe.empty()) {
      std::cerr << "warning: cannot resolve /proc/self/exe; skipping the "
                   "multithread section\n";
    } else {
      std::vector<int> widths;
      for (const int t :
           {2, static_cast<int>(std::thread::hardware_concurrency())}) {
        if (t >= 2 && t != parallel_slots() &&
            std::find(widths.begin(), widths.end(), t) == widths.end()) {
          widths.push_back(t);
        }
      }
      for (const int t : widths) {
        ThreadSection section =
            run_thread_section(exe, t, smoke, repeat, seed, json_path, reports);
        if (!section.ran) {
          all_deterministic = false;
        }
        for (const ThreadSectionInstance& ti : section.instances) {
          if (!ti.exact_bit_identical || !ti.approx_bit_identical) {
            all_deterministic = false;
            std::cerr << "FAIL: threads=" << t << " " << ti.name
                      << (ti.exact_bit_identical ? "" : " exact-lambda drift")
                      << (ti.approx_bit_identical ? ""
                                                  : " approx-lambda drift")
                      << "\n";
          }
        }
        std::cout << "threads=" << t << ": "
                  << (section.ran ? "ok" : "FAILED")
                  << ", approx geomean " << section.approx_geomean_speedup
                  << "x\n";
        sections.push_back(std::move(section));
      }
    }
  }

  std::ofstream out(json_path);
  out << to_json(reports, smoke, with_baseline, geomean_speedup,
                 rrg_class_speedup, approx_geomean, rrg_approx_geomean,
                 sections);
  out.close();
  if (!out) {
    std::cerr << "FAIL: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_match) {
    std::cerr << "FAIL: solver results diverged from the seed baseline\n";
    return 1;
  }
  if (!all_within_tolerance) {
    std::cerr << "FAIL: approx lambda outside the epsilon tolerance of the "
                 "exact certificate\n";
    return 1;
  }
  if (!all_deterministic) {
    std::cerr << "FAIL: multithread runs did not reproduce the parent's "
                 "lambdas bit for bit\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace topo::bench

int main(int argc, char** argv) {
  try {
    return topo::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
