// Frozen copy of the seed packet simulator, kept as the perf baseline.
//
// This is the pre-rewrite implementation verbatim (std::priority_queue
// event heap, per-packet std::vector<int> route copies on every send, a
// one-dead-event-per-ACK retransmission timer, deque link FIFOs, and
// one heap allocation per pooled packet): sim_microbench times the
// library simulator against it and reports events/sec for both. Driven
// with the same topology, flow list, and seed it reproduces the same
// transport dynamics as the rewrite, so goodputs double as an
// equivalence check. Do not modernize this file — its whole value is
// staying what the seed was.
#ifndef TOPODESIGN_BENCH_BASELINE_SIM_H
#define TOPODESIGN_BENCH_BASELINE_SIM_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "topo/topology.h"
#include "util/rng.h"

namespace topo::bench::seedsim {

using SimTime = std::uint64_t;

class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(std::uint64_t cookie) = 0;
};

class EventQueue {
 public:
  [[nodiscard]] SimTime now() const { return now_; }
  void schedule(SimTime when, EventHandler* handler, std::uint64_t cookie);
  std::uint64_t run_until(SimTime end);
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;
    EventHandler* handler = nullptr;
    std::uint64_t cookie = 0;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

struct Packet {
  std::vector<int> route;
  std::size_t hop = 0;
  int flow_id = -1;
  int subflow_id = -1;
  std::int64_t seq = 0;
  std::int64_t ack = -1;
  bool is_ack = false;
  int size_bytes = 0;
  std::uint64_t sent_at = 0;
};

class PacketReceiver {
 public:
  virtual ~PacketReceiver() = default;
  virtual void packet_arrived(Packet* packet) = 0;
};

class SimLink : public EventHandler {
 public:
  SimLink(EventQueue* queue, double rate_gbps, SimTime delay_ns,
          int queue_packets, PacketReceiver* receiver, Rng* rng = nullptr);
  SimLink(const SimLink&) = delete;
  SimLink& operator=(const SimLink&) = delete;

  [[nodiscard]] bool enqueue(Packet* packet);
  void on_event(std::uint64_t cookie) override;
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  static constexpr std::uint64_t kTxDone = 0;
  static constexpr std::uint64_t kArrival = 1;
  static constexpr double kRedStart = 0.6;
  static constexpr double kRedMaxProbability = 0.2;

  void start_transmission(Packet* packet);

  EventQueue* events_;
  double rate_gbps_;
  SimTime delay_ns_;
  int queue_capacity_;
  PacketReceiver* receiver_;
  Rng* rng_;

  Packet* transmitting_ = nullptr;
  std::deque<Packet*> queue_;
  std::deque<Packet*> in_flight_;
  std::uint64_t drops_ = 0;
};

class TransportEnv {
 public:
  virtual ~TransportEnv() = default;
  virtual EventQueue& events() = 0;
  virtual Packet* alloc_packet() = 0;
  virtual void free_packet(Packet* packet) = 0;
  virtual void inject(Packet* packet) = 0;
};

struct TcpParams {
  int packet_bytes = 1500;
  int ack_bytes = 64;
  double initial_cwnd = 2.0;
  double initial_ssthresh = 64.0;
  SimTime min_rto_ns = 3'000'000;
  double increase_scale = 1.0;
};

class TcpSubflow : public EventHandler {
 public:
  TcpSubflow(TransportEnv* env, int flow_id, int subflow_id,
             std::vector<int> route_forward, std::vector<int> route_reverse,
             const TcpParams& params);

  void start(SimTime at);
  void handle_data(Packet* packet);
  void handle_ack(Packet* packet);
  void on_event(std::uint64_t cookie) override;
  [[nodiscard]] std::int64_t delivered_packets() const { return rcv_next_; }

 private:
  static constexpr std::uint64_t kStartCookieBit = 1ULL << 63;

  void try_send();
  void send_segment(std::int64_t seq, bool is_retransmit);
  void send_ack(SimTime echo_sent_at);
  void arm_rto();
  void on_rto();

  TransportEnv* env_;
  int flow_id_;
  int subflow_id_;
  std::vector<int> route_forward_;
  std::vector<int> route_reverse_;
  TcpParams params_;

  std::int64_t snd_next_ = 0;
  std::int64_t snd_una_ = 0;
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
  std::int64_t retransmits_ = 0;
  std::uint64_t rto_generation_ = 0;
  SimTime srtt_ns_ = 0;
  SimTime rttvar_ns_ = 0;
  SimTime rto_ns_;
  bool started_ = false;

  std::int64_t rcv_next_ = 0;
  std::set<std::int64_t> out_of_order_;
};

struct SeedSimResult {
  double mean_normalized = 0.0;
  std::uint64_t events_processed = 0;
  std::vector<double> goodputs_gbps;
};

/// The seed SimNetwork, minus the workload helper: the bench hands both
/// simulators one explicit flow list so they simulate the same system.
class SeedSimNetwork final : public PacketReceiver, public TransportEnv {
 public:
  struct Params {
    double server_rate_gbps = 1.0;
    SimTime link_delay_ns = 1'000;
    int queue_packets = 25;
    int packet_bytes = 1500;
    int subflows = 8;
    SimTime duration_ns = 20'000'000;
    SimTime warmup_ns = 10'000'000;
    SimTime start_jitter_ns = 2'000'000;
    bool ewtcp_coupling = true;
  };

  SeedSimNetwork(const BuiltTopology& topology, const Params& params,
                 std::uint64_t seed);
  ~SeedSimNetwork() override;

  SeedSimNetwork(const SeedSimNetwork&) = delete;
  SeedSimNetwork& operator=(const SeedSimNetwork&) = delete;

  void add_flow(int src_server, int dst_server);
  [[nodiscard]] SeedSimResult run();

  void packet_arrived(Packet* packet) override;
  EventQueue& events() override { return events_; }
  Packet* alloc_packet() override;
  void free_packet(Packet* packet) override;
  void inject(Packet* packet) override;

 private:
  struct FlowRecord {
    int src_server = 0;
    int dst_server = 0;
    std::vector<std::unique_ptr<TcpSubflow>> subflows;
    std::vector<std::int64_t> delivered_at_warmup;
  };

  [[nodiscard]] int host_uplink(int server) const;
  [[nodiscard]] int host_downlink(int server) const;
  [[nodiscard]] const std::vector<int>& dist_to(NodeId dst_switch);

  const BuiltTopology& topology_;
  Params params_;
  Rng rng_;
  EventQueue events_;
  std::vector<std::unique_ptr<SimLink>> links_;
  std::vector<NodeId> server_home_;
  std::vector<FlowRecord> flows_;
  std::map<NodeId, std::vector<int>> dist_cache_;

  std::vector<std::unique_ptr<Packet>> pool_storage_;
  std::vector<Packet*> pool_free_;
  std::uint64_t dropped_at_inject_ = 0;
};

}  // namespace topo::bench::seedsim

#endif  // TOPODESIGN_BENCH_BASELINE_SIM_H
